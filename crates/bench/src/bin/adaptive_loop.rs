//! The parallel adaptive loop (§I, §III-B, Fig. 13's remedy): repeated
//! rounds of predict → balance → adapt on a distributed mesh, with a
//! moving shock front driving both refinement (ahead of the front) and
//! coarsening (behind it).
//!
//! Each round:
//! 1. estimate every element's post-adaptation load with
//!    `pumi_adapt::predict`, scaled by the running per-branch
//!    [`Calibration`] factors, and stamp it as the `parma:weight` /
//!    `adapt:branch` element tags (`pumi_adapt::stamp_weights`),
//! 2. **speculatively** run ParMA's diffusive improvement on those
//!    *calibrated predicted* weights (`parma::improve_weighted`) — moving
//!    few coarse elements before refinement multiplies them,
//! 3. adapt in parallel with `pumi_adapt::adapt_dist`
//!    (boundary-consistent refinement + interior coarsening, invariants
//!    checked every round),
//! 4. measure the *actual* per-part element loads the adaptation
//!    produced, feed the per-branch prediction-vs-reality evidence back
//!    into the calibration (`Calibration::observe`), and record the
//!    round's `prediction_error_pct`,
//! 5. when the realized imbalance still exceeds the touch-up threshold,
//!    run a count-based post-adapt touch-up (`parma::improve_above`) —
//!    gated off entirely once the calibrated predictor is trusted.
//!
//! The loop runs **twice** on a hierarchical machine model (`--nodes`
//! nodes, default 2): a *topology-blind* leg (flat initial partition, no
//! [`TopologyOpts`]) and — unless `--no-topo` — a *hierarchy-aware* leg
//! (node-major `partition_mesh_hier` initial labels, distributed
//! `partition_hier` placement audit, and topology-aware ParMA in every
//! balancing step). Both legs record the per-round on-/off-node byte
//! split from the PCU traffic meters; at the default reproduction scale
//! the topo leg must move fewer off-node bytes per adapt round while
//! ending within 1 pp of the blind leg's final imbalance.
//!
//! A frozen-partition control runs the same adaptation rounds with no
//! balancing — the Fig. 13 blow-up the predictive loop is meant to
//! prevent. The per-round trajectory (predicted, balanced, actual,
//! prediction error, correction factors, migration volume, traffic
//! split) lands in `results/adaptive_loop.json`, and the
//! trajectory-shape guarantees are asserted at the default reproduction
//! scale: prediction error shrinks monotonically and the migration
//! volume *decreases* after round 1 (the uncalibrated baseline grew
//! 31 → 1295).
//!
//! Usage: `adaptive_loop [--n N] [--parts N] [--ranks N] [--rounds N]
//! [--tol F] [--touchup PCT] [--no-calibrate] [--nodes N]
//! [--topo|--no-topo]`

use parma::{improve_above, improve_weighted, EntityLoads, ImproveOpts, Priority, TopologyOpts};
use pumi_adapt::dist::{adapt_dist, gather_branch_loads, stamp_weights, AdaptOpts};
use pumi_adapt::{prediction_error_pct, Calibration, CoarsenOpts, Sample, WEIGHT_TAG};
use pumi_bench::report::{f, print_table, table_to_json, write_report, Table};
use pumi_bench::workloads::distribute_labels;
use pumi_check::CheckOpts;
use pumi_core::DistMesh;
use pumi_mesh::Mesh;
use pumi_meshgen::tri_rect;
use pumi_obs::adapt::{AdaptTrace, RoundRow};
use pumi_obs::json::Json;
use pumi_obs::report::Report;
use pumi_partition::{partition_hier, partition_mesh, partition_mesh_hier, HierOpts};
use pumi_pcu::{Comm, MachineModel};
use pumi_util::stats::{imbalance_pct, Timer};
use pumi_util::{Dim, PartId};

struct Config {
    n: usize,
    nparts: usize,
    nranks: usize,
    nodes: usize,
    rounds: usize,
    tol: f64,
    touchup_pct: f64,
    calibrate: bool,
    topo: bool,
}

impl Config {
    /// The documented reproduction scale — the one that generates the
    /// committed `results/adaptive_loop.json` and carries the
    /// trajectory-shape assertions.
    fn is_default_scale(&self) -> bool {
        (self.n, self.nparts, self.nranks, self.rounds) == (32, 8, 4, 4)
            && self.nodes == 2
            && self.tol == 0.05
            && self.touchup_pct == 10.0
            && self.calibrate
    }

    /// The simulated machine: `--nodes` nodes × `ranks/nodes` cores.
    fn machine(&self) -> MachineModel {
        assert!(
            self.nodes >= 1 && self.nranks.is_multiple_of(self.nodes),
            "--ranks {} must be a positive multiple of --nodes {}",
            self.nranks,
            self.nodes
        );
        MachineModel::new(self.nodes, self.nranks / self.nodes)
    }
}

fn parse_args() -> Config {
    let mut cfg = Config {
        n: 32,
        nparts: 8,
        nranks: 4,
        nodes: 2,
        rounds: 4,
        tol: 0.05,
        touchup_pct: 10.0,
        calibrate: true,
        topo: true,
    };
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--no-calibrate" => {
                cfg.calibrate = false;
                i += 1;
                continue;
            }
            "--topo" => {
                cfg.topo = true;
                i += 1;
                continue;
            }
            "--no-topo" => {
                cfg.topo = false;
                i += 1;
                continue;
            }
            _ => {}
        }
        assert!(i + 1 < args.len(), "flag {} needs a value", args[i]);
        let v = &args[i + 1];
        match args[i].as_str() {
            "--n" => cfg.n = v.parse().expect("--n"),
            "--parts" => cfg.nparts = v.parse().expect("--parts"),
            "--ranks" => cfg.nranks = v.parse().expect("--ranks"),
            "--nodes" => cfg.nodes = v.parse().expect("--nodes"),
            "--rounds" => cfg.rounds = v.parse().expect("--rounds"),
            "--tol" => cfg.tol = v.parse().expect("--tol"),
            "--touchup" => cfg.touchup_pct = v.parse().expect("--touchup"),
            other => panic!("unknown flag {other}"),
        }
        i += 2;
    }
    cfg
}

/// The round's size field: an oblique shock front that sweeps across the
/// unit square, demanding fine resolution in a band around it and coarse
/// everywhere else — so elements refined in round `r` become coarsening
/// targets in round `r + 1`.
fn round_size(round: usize) -> pumi_adapt::SizeField {
    let c = 0.25 + 0.18 * round as f64;
    pumi_adapt::SizeField::shock(move |p| p[0] + 0.4 * p[1] - c, 0.008, 0.12, 0.03)
}

fn elem_imbalance_pct(comm: &Comm, dm: &DistMesh, d: Dim) -> f64 {
    EntityLoads::gather(comm, dm).imbalance_pct(d)
}

/// Read the world traffic meters at a quiesced point: the barriers fence
/// the read so no rank is mid-send while another samples, making the
/// sample identical on every rank.
fn traffic_bytes(c: &Comm) -> (u64, u64) {
    c.barrier();
    let t = c.traffic();
    let split = (t.on_node_bytes, t.off_node_bytes);
    c.barrier();
    split
}

/// One full predictive adapt→predict→balance run. With `topo` set, every
/// ParMA step (speculative and touch-up) runs topology-aware, and the
/// distributed hierarchical placement is computed once up front as a
/// placement audit. Returns the trace (and obs report) on rank 0.
fn predictive_loop(
    c: &Comm,
    cfg: &Config,
    serial: &Mesh,
    labels: &[PartId],
    pri: &Priority,
    topo: Option<TopologyOpts>,
) -> Option<(AdaptTrace, Option<Json>)> {
    let elem_d = serial.elem_dim_t();
    let mut dm = distribute_labels(c, serial, labels, cfg.nparts);
    let leg = if topo.is_some() {
        "topology-aware"
    } else {
        "topology-blind"
    };
    if let Some(t) = &topo {
        // Distributed placement audit: the part graph's hierarchical
        // placement, recomputed collectively from boundary-copy weights.
        let h = partition_hier(c, &dm, &t.machine, HierOpts::default());
        if c.rank() == 0 {
            eprintln!(
                "hier placement: {:.1}% of boundary weight crosses nodes",
                100.0 * h.off_node_fraction()
            );
        }
    }
    let opts = |tol: f64| {
        let o = ImproveOpts::new().tol(tol).max_iters(60);
        match topo {
            Some(t) => o.topo(t),
            None => o,
        }
    };
    let label = format!(
        "moving shock, {} parts on {} ranks ({leg})",
        cfg.nparts, cfg.nranks
    );
    pumi_obs::adapt::begin(&label);
    // Rows are also collected locally: the obs recorder is a no-op
    // under --no-default-features, but the tables and shape checks
    // below must work either way.
    let mut local = AdaptTrace {
        label,
        ..AdaptTrace::default()
    };
    let mut cal = Calibration::new();
    let timer = Timer::start();
    let mut base = traffic_bytes(c);
    for round in 0..cfg.rounds {
        let size = round_size(round);
        // 1. Calibrated prediction, stamped as riding tags.
        stamp_weights(&mut dm, &size, &cal);
        let correction = cal.factors();
        let before = elem_imbalance_pct(c, &dm, elem_d);
        let predicted = EntityLoads::gather_weighted(c, &dm, WEIGHT_TAG).imbalance_pct(elem_d);
        // 2. Speculative pre-adapt rebalancing on the predicted loads:
        // the elements migrating here are the *coarse* ones.
        let report = {
            let _span = pumi_obs::span!("adapt.balance");
            improve_weighted(c, &mut dm, pri, opts(cfg.tol), WEIGHT_TAG)
        };
        let balanced = EntityLoads::gather_weighted(c, &dm, WEIGHT_TAG).imbalance_pct(elem_d);
        // Per-part per-branch predicted loads of the partition that
        // adaptation is about to act on — the calibration evidence.
        let branch_pred = gather_branch_loads(c, &dm);
        // 3. Adapt. CheckOpts::all() includes the topology audit: the
        // part→rank→node placement is re-verified every round.
        let stats = adapt_dist(
            c,
            &mut dm,
            &size,
            AdaptOpts::new()
                .coarsen(CoarsenOpts::default())
                .check(CheckOpts::all()),
        );
        // 4. Prediction vs reality, per part — close the loop.
        let realized = EntityLoads::gather(c, &dm).of(elem_d).to_vec();
        let actual = imbalance_pct(&realized);
        let samples: Vec<Sample> = branch_pred
            .iter()
            .zip(&realized)
            .map(|(&predicted, &realized)| Sample {
                predicted,
                realized,
            })
            .collect();
        let prediction_error = prediction_error_pct(&samples);
        if cfg.calibrate {
            cal.observe(&samples);
        }
        // 5. Touch-up only when reality still missed the target — and
        // only down to the trust threshold, not the full speculative
        // tolerance: the calibrated predictor owns fine-grained
        // balance, the touch-up just caps the damage of a miss.
        let touchup_moved = improve_above(
            c,
            &mut dm,
            pri,
            opts(cfg.touchup_pct / 100.0),
            cfg.touchup_pct,
        )
        .map_or(0, |r| r.elements_moved);
        let final_pct = if touchup_moved > 0 {
            elem_imbalance_pct(c, &dm, elem_d)
        } else {
            actual
        };
        let now = traffic_bytes(c);
        let (on_node_bytes, off_node_bytes) = (now.0 - base.0, now.1 - base.1);
        base = now;
        if c.rank() == 0 {
            eprintln!(
                "{leg} round {}: predicted {predicted:.1}% -> balanced {balanced:.1}% -> \
                 actual {actual:.1}% -> final {final_pct:.1}%  (err {prediction_error:.1}%, \
                 {} + {} moved, {} splits, {} collapses, {} elements, \
                 {off_node_bytes} B off-node)",
                round + 1,
                report.elements_moved,
                touchup_moved,
                stats.splits,
                stats.collapses,
                stats.elements_after
            );
        }
        let row = RoundRow {
            round: round as u32 + 1,
            before_pct: before,
            predicted_pct: predicted,
            balanced_pct: balanced,
            actual_pct: actual,
            final_pct,
            prediction_error_pct: prediction_error,
            correction,
            splits: stats.splits,
            collapses: stats.collapses,
            elements_moved: report.elements_moved,
            touchup_moved,
            elements: stats.elements_after,
            on_node_bytes,
            off_node_bytes,
        };
        local.rounds.push(row);
        pumi_obs::adapt::round(row);
    }
    let seconds = c.allreduce_max_f64(timer.seconds());
    local.seconds = seconds;
    pumi_obs::adapt::end(seconds);
    let obs = pumi_pcu::obs::world_report(c);
    (c.rank() == 0).then(|| {
        // Prefer the recorder's trace (exercising the shipped obs
        // path); fall back to the local copy when obs is compiled out.
        let trace = pumi_obs::adapt::take().into_iter().next().unwrap_or(local);
        (trace, obs)
    })
}

fn main() {
    let cfg = parse_args();
    let machine = cfg.machine();
    let serial = tri_rect(cfg.n, cfg.n, 1.0, 1.0);
    let elem_d = serial.elem_dim_t();
    eprintln!(
        "adaptive_loop: {} tris, {} parts on {} ranks ({} nodes x {} cores), {} rounds{}{}",
        serial.num_elems(),
        cfg.nparts,
        cfg.nranks,
        machine.nodes,
        machine.cores_per_node,
        cfg.rounds,
        if cfg.calibrate { "" } else { " (uncalibrated)" },
        if cfg.topo { "" } else { " (topo leg off)" }
    );
    let labels = partition_mesh(&serial, cfg.nparts);
    let pri: Priority = "Face".parse().unwrap();

    // ---- The predictive loop, topology-blind (the control leg) ----
    let out = pumi_pcu::execute_on(machine, |c| {
        predictive_loop(c, &cfg, &serial, &labels, &pri, None)
    });
    let (trace, obs) = out.into_iter().flatten().next().unwrap();

    // ---- The same loop, hierarchy-aware end to end ----
    let topo_trace: Option<AdaptTrace> = cfg.topo.then(|| {
        let hier_labels = partition_mesh_hier(&serial, cfg.nparts, &machine, HierOpts::default());
        let out = pumi_pcu::execute_on(machine, |c| {
            predictive_loop(
                c,
                &cfg,
                &serial,
                &hier_labels,
                &pri,
                Some(TopologyOpts::new(machine).off_node_penalty(2.0)),
            )
        });
        out.into_iter().flatten().next().unwrap().0
    });

    // ---- Frozen-partition control: same rounds, no balancing ----
    let frozen = pumi_pcu::execute_on(machine, |c| {
        let mut dm = distribute_labels(c, &serial, &labels, cfg.nparts);
        let mut actuals = Vec::new();
        for round in 0..cfg.rounds {
            let size = round_size(round);
            adapt_dist(
                c,
                &mut dm,
                &size,
                AdaptOpts::new().coarsen(CoarsenOpts::default()),
            );
            actuals.push(elem_imbalance_pct(c, &dm, elem_d));
        }
        (c.rank() == 0).then_some(actuals)
    });
    let frozen = frozen.into_iter().flatten().next().unwrap();

    // ---- Per-round table (blind leg) ----
    let mut t = Table::new(
        &format!(
            "Adaptive loop: {} rounds, {} parts (element imbalance %)",
            cfg.rounds, cfg.nparts
        ),
        &[
            "round",
            "predicted",
            "after ParMA",
            "after adapt",
            "final",
            "pred err",
            "frozen ctrl",
            "moved",
            "touch-up",
            "elements",
        ],
    );
    for (r, ctrl) in trace.rounds.iter().zip(&frozen) {
        t.row(vec![
            r.round.to_string(),
            f(r.predicted_pct, 1),
            f(r.balanced_pct, 1),
            f(r.actual_pct, 1),
            f(r.final_pct, 1),
            f(r.prediction_error_pct, 1),
            f(*ctrl, 1),
            r.elements_moved.to_string(),
            r.touchup_moved.to_string(),
            r.elements.to_string(),
        ]);
    }
    print_table(&t);

    // ---- Topology A/B table ----
    let mut ab = Table::new(
        &format!(
            "Topology A/B: off-node KB per round ({} nodes x {} cores)",
            machine.nodes, machine.cores_per_node
        ),
        &[
            "round",
            "blind off-KB",
            "topo off-KB",
            "blind final %",
            "topo final %",
        ],
    );
    if let Some(tt) = &topo_trace {
        for (b, r) in trace.rounds.iter().zip(&tt.rounds) {
            ab.row(vec![
                b.round.to_string(),
                f(b.off_node_bytes as f64 / 1024.0, 1),
                f(r.off_node_bytes as f64 / 1024.0, 1),
                f(b.final_pct, 1),
                f(r.final_pct, 1),
            ]);
        }
        print_table(&ab);
    }

    // Hard invariant at any scale, for both legs: a ParMA step never makes
    // the predicted imbalance worse. Strict per-round improvement is *not*
    // an invariant of the diffusion heuristic — under stagnation (small
    // `--n`/`--parts` configs put the whole shock band in one part with no
    // admissible move; see EXPERIMENTS.md) it can move elements among
    // non-peak parts while max/avg stays pinned by the spike.
    let worsened: Vec<String> = trace
        .rounds
        .iter()
        .chain(topo_trace.iter().flat_map(|t| t.rounds.iter()))
        .filter(|r| r.balanced_pct > r.predicted_pct + 1e-9)
        .map(|r| {
            format!(
                "round {}: predicted {:.6}% -> balanced {:.6}% with {} elements moved",
                r.round, r.predicted_pct, r.balanced_pct, r.elements_moved
            )
        })
        .collect();
    let last = trace.rounds.last().unwrap();
    let errors: Vec<f64> = trace
        .rounds
        .iter()
        .map(|r| r.prediction_error_pct)
        .collect();
    let moved: Vec<u64> = trace
        .rounds
        .iter()
        .map(|r| r.elements_moved + r.touchup_moved)
        .collect();
    println!();
    println!(
        "check: ParMA reduced predicted imbalance in {}/{} rounds",
        trace
            .rounds
            .iter()
            .filter(|r| r.balanced_pct < r.predicted_pct)
            .count(),
        trace.rounds.len()
    );
    println!(
        "check: prediction error trajectory {:?} %, migration volume {moved:?}",
        errors
            .iter()
            .map(|e| (e * 10.0).round() / 10.0)
            .collect::<Vec<_>>()
    );
    println!(
        "check: final imbalance {:.1}% vs frozen-partition {:.1}%  (paper Fig 13: >400% when frozen)",
        last.final_pct,
        frozen.last().unwrap()
    );
    let blind_off: u64 = trace.rounds.iter().map(|r| r.off_node_bytes).sum();
    if let Some(tt) = &topo_trace {
        let topo_off: u64 = tt.rounds.iter().map(|r| r.off_node_bytes).sum();
        let topo_last = tt.rounds.last().unwrap();
        println!(
            "check: off-node bytes {topo_off} (topo) vs {blind_off} (blind) over {} rounds; \
             final imbalance {:.1}% (topo) vs {:.1}% (blind)",
            cfg.rounds, topo_last.final_pct, last.final_pct
        );
    }
    assert!(
        worsened.is_empty(),
        "a ParMA step increased the predicted imbalance:\n{}",
        worsened.join("\n")
    );
    // At the documented reproduction scale (the defaults, which generate
    // the committed results/adaptive_loop.json), the calibrated loop's
    // shape claims are regression-guarded: every ParMA step strictly
    // improves, the loop ends below the frozen-partition control and at
    // or below the 24.5% the uncalibrated baseline reached, prediction
    // error shrinks monotonically, and the migration-volume trajectory is
    // *inverted*: the uncalibrated baseline grew every round and peaked at
    // the end (31 → 455 → 712 → 1295); calibrated, the peak is the
    // round-2 catch-up (right after the first calibration evidence lands)
    // and every later round stays strictly — and the last round well —
    // below it. Migration cannot shrink to zero here: the shock front
    // keeps moving, so ~a band's worth of elements must migrate every
    // round just to track it.
    if cfg.is_default_scale() {
        assert!(
            trace
                .rounds
                .iter()
                .all(|r| r.balanced_pct < r.predicted_pct),
            "a ParMA step failed to reduce the predicted imbalance at the default scale"
        );
        assert!(
            last.final_pct < *frozen.last().unwrap(),
            "predictive loop did not beat the frozen-partition control at the default scale"
        );
        assert!(
            last.final_pct <= 24.6,
            "calibrated loop ended at {:.1}%, worse than the 24.5% uncalibrated baseline",
            last.final_pct
        );
        for w in errors.windows(2) {
            assert!(
                w[1] < w[0],
                "prediction error did not shrink monotonically: {errors:?}"
            );
        }
        let peak = moved[1];
        assert!(
            moved.iter().max() == Some(&peak),
            "migration volume did not peak at the round-2 catch-up: {moved:?}"
        );
        assert!(
            moved[2..].iter().all(|&m| m < peak),
            "migration volume regrew to its peak after round 2: {moved:?}"
        );
        assert!(
            *moved.last().unwrap() <= peak * 3 / 4,
            "final-round migration {} did not decline from the round-2 peak {peak}: {moved:?}",
            moved.last().unwrap()
        );
        // The topology acceptance criterion: hierarchy-aware ParMA moves
        // fewer off-node bytes per adapt round than the blind leg, at
        // equal (±1 pp) final imbalance.
        if let Some(tt) = &topo_trace {
            let topo_off: u64 = tt.rounds.iter().map(|r| r.off_node_bytes).sum();
            assert!(
                topo_off < blind_off,
                "topology-aware leg moved {topo_off} off-node bytes, \
                 blind leg {blind_off}"
            );
            for (b, r) in trace.rounds.iter().zip(&tt.rounds) {
                assert!(
                    r.off_node_bytes < b.off_node_bytes,
                    "round {}: topo off-node bytes {} not below blind {}",
                    b.round,
                    r.off_node_bytes,
                    b.off_node_bytes
                );
            }
            let topo_final = tt.rounds.last().unwrap().final_pct;
            assert!(
                topo_final <= last.final_pct + 1.0,
                "topo leg final imbalance {topo_final:.2}% more than 1 pp above \
                 blind {:.2}%",
                last.final_pct
            );
        }
    }

    // ---- results/adaptive_loop.json ----
    let mut report = Report::new("adaptive_loop");
    report.section(
        "config",
        Json::obj([
            ("n", Json::U64(cfg.n as u64)),
            ("initial_elements", Json::U64(serial.num_elems() as u64)),
            ("parts", Json::U64(cfg.nparts as u64)),
            ("ranks", Json::U64(cfg.nranks as u64)),
            ("nodes", Json::U64(cfg.nodes as u64)),
            ("rounds", Json::U64(cfg.rounds as u64)),
            ("tol", Json::F64(cfg.tol)),
            ("touchup_pct", Json::F64(cfg.touchup_pct)),
            ("calibrate", Json::Bool(cfg.calibrate)),
            ("topo", Json::Bool(cfg.topo)),
        ]),
    );
    report.section("loop", trace.to_json());
    report.section(
        "topo_loop",
        topo_trace.as_ref().map_or(Json::Null, |tt| tt.to_json()),
    );
    report.section(
        "frozen_control",
        Json::arr(frozen.iter().map(|&pct| Json::F64(pct))),
    );
    // Scalar trajectory summaries, folded into BENCH_pcu.json by
    // scripts/bench_snapshot.sh (same row shape as the timing benches;
    // imbalance/error rows are in basis points so they stay integers).
    let sfx = if cfg.is_default_scale() { "" } else { "@smoke" };
    let bp = |pct: f64| ((pct * 100.0).round() as u64).max(1);
    let mut medians = vec![
        ("final_imbalance_bp", bp(last.final_pct)),
        ("pred_err_last_bp", bp(last.prediction_error_pct)),
        ("elements_moved", moved.iter().sum::<u64>().max(1)),
    ];
    if let Some(tt) = &topo_trace {
        let topo_off: u64 = tt.rounds.iter().map(|r| r.off_node_bytes).sum();
        medians.push(("offnode_bytes", topo_off.max(1)));
        medians.push(("offnode_bytes_blind", blind_off.max(1)));
    }
    report.section(
        "medians",
        Json::arr(medians.iter().map(|(name, v)| {
            Json::obj([
                ("bench", Json::str(format!("adaptive_loop/{name}{sfx}"))),
                ("median_ns", Json::U64(*v)),
                ("samples", Json::U64(cfg.rounds as u64)),
            ])
        })),
    );
    report.section("obs", obs.unwrap_or(Json::Null));
    let mut tables = vec![table_to_json(&t)];
    if topo_trace.is_some() {
        tables.push(table_to_json(&ab));
    }
    report.section("tables", Json::arr(tables));
    write_report(&report);
}
