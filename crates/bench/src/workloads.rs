//! Workload construction for the experiment binaries.

use pumi_core::{distribute, DistMesh, PartMap};
use pumi_geom::builders::VesselSpec;
use pumi_mesh::Mesh;
use pumi_meshgen::{jitter, vessel_tet, wing_tet};
use pumi_pcu::Comm;
use pumi_util::PartId;

/// Scale parameters for the AAA (Table II) workload.
#[derive(Debug, Clone, Copy)]
pub struct AaaScale {
    /// Cross-section lattice resolution.
    pub nr: usize,
    /// Axial layers.
    pub nz: usize,
    /// Total parts.
    pub nparts: usize,
    /// Ranks (processes); parts per process = nparts / nranks.
    pub nranks: usize,
}

impl AaaScale {
    /// The default scaled run: 240k tets on 64 parts over 4 ranks
    /// (16 parts/process; the paper used 32 parts/process on 512 cores).
    /// The part size (~3750 tets) is chosen so per-part surface/volume
    /// statistics are in the regime of the paper's 8177-tet parts.
    pub fn default_scale() -> AaaScale {
        AaaScale {
            nr: 20,
            nz: 100,
            nparts: 64,
            nranks: 4,
        }
    }

    /// A small scale for integration tests (~9k tets, 16 parts, 2 ranks).
    pub fn test_scale() -> AaaScale {
        AaaScale {
            nr: 6,
            nz: 42,
            nparts: 16,
            nranks: 2,
        }
    }

    /// Tet count of this scale.
    pub fn elements(&self) -> usize {
        6 * self.nr * self.nr * self.nz
    }
}

/// Build the AAA-proxy vessel mesh (jittered so entity ratios vary by
/// part the way a real CFD mesh's do).
pub fn aaa_mesh(nr: usize, nz: usize) -> Mesh {
    let spec = VesselSpec::aaa();
    let mut m = vessel_tet(spec, nr, nz);
    jitter(&mut m, 0.25, 20120901);
    m
}

/// [`aaa_mesh`] at an [`AaaScale`].
pub fn aaa_scaled(s: AaaScale) -> Mesh {
    aaa_mesh(s.nr, s.nz)
}

/// Build the ONERA-M6-proxy wing box mesh.
pub fn wing_mesh(n: usize) -> Mesh {
    let mut m = wing_tet(n, (n * 2) / 3, n / 2);
    jitter(&mut m, 0.2, 19790401);
    m
}

/// Distribute a serial mesh by element labels onto `nparts` parts over
/// `comm`'s ranks (block-contiguous part→rank map).
pub fn distribute_labels(comm: &Comm, serial: &Mesh, labels: &[PartId], nparts: usize) -> DistMesh {
    let map = PartMap::contiguous(nparts, comm.nranks());
    distribute(comm, map, serial, labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_are_consistent() {
        let s = AaaScale::test_scale();
        assert_eq!(s.elements(), 6 * 6 * 6 * 42);
        assert!(AaaScale::default_scale().elements() > 100_000);
    }

    #[test]
    fn aaa_test_mesh_is_valid() {
        let s = AaaScale::test_scale();
        let m = aaa_scaled(s);
        assert_eq!(m.num_elems(), s.elements());
        m.assert_valid();
    }
}
