//! Migration micro-benchmark (§II-C): the cost of moving one band of
//! elements across a part boundary, the primitive under every ParMA
//! iteration and every rebalance in an adaptive workflow.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pumi_core::{distribute, migrate, MigrationPlan, PartMap};
use pumi_meshgen::tet_box;
use pumi_pcu::execute;
use pumi_util::{FxHashMap, PartId};

fn migrate_band(n: usize) -> u64 {
    let serial = tet_box(n, n, n, 1.0, 1.0, 1.0);
    let d = serial.elem_dim_t();
    let mut labels = vec![0 as PartId; serial.index_space(d)];
    for e in serial.iter(d) {
        labels[e.idx()] = if serial.centroid(e)[0] < 0.5 { 0 } else { 1 };
    }
    let moved = execute(2, |c| {
        let mut dm = distribute(c, PartMap::contiguous(2, 2), &serial, &labels);
        let mut plans: FxHashMap<PartId, MigrationPlan> = FxHashMap::default();
        if c.rank() == 0 {
            let part = dm.part(0);
            let mut plan = MigrationPlan::new();
            for e in part.mesh.elems() {
                let x = part.mesh.centroid(e);
                if x[0] > 0.5 - 1.5 / n as f64 {
                    plan.send(e, 1);
                }
            }
            plans.insert(0, plan);
        }
        let stats = migrate(c, &mut dm, &plans);
        stats.elements_moved
    });
    moved[0]
}

fn migration(c: &mut Criterion) {
    let mut group = c.benchmark_group("migration");
    group.sample_size(10);
    for n in [8usize, 12, 16] {
        let elems = 6 * n * n * n;
        group.throughput(Throughput::Elements(elems as u64));
        group.bench_with_input(BenchmarkId::new("band", elems), &n, |b, &n| {
            b.iter(|| migrate_band(n))
        });
    }
    group.finish();
}

criterion_group!(benches, migration);
criterion_main!(benches);
