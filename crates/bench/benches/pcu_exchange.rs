//! PCU phased-exchange micro-benchmarks (§II-D): cost of one neighbour
//! exchange round versus rank count and payload size, including the 32-rank
//! single-node configuration the paper tested on Blue Gene/Q.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pumi_pcu::phased::Exchange;
use pumi_pcu::{execute_on, MachineModel};

fn exchange_round(threads: usize, payload: usize, rounds: usize) {
    let machine = MachineModel::new(1, threads);
    execute_on(machine, |c| {
        for _ in 0..rounds {
            let mut ex = Exchange::new(c);
            let next = (c.rank() + 1) % c.nranks();
            if next != c.rank() {
                ex.to(next).put_bytes(&vec![0u8; payload]);
            }
            let _ = ex.finish();
        }
    });
}

fn pcu(c: &mut Criterion) {
    let mut group = c.benchmark_group("pcu_exchange");
    group.sample_size(10);
    for threads in [2usize, 8, 32] {
        group.throughput(Throughput::Elements(threads as u64));
        group.bench_with_input(
            BenchmarkId::new("ring_4KiB", threads),
            &threads,
            |b, &threads| b.iter(|| exchange_round(threads, 4096, 8)),
        );
    }
    for payload in [64usize, 4096, 65536] {
        group.throughput(Throughput::Bytes(payload as u64));
        group.bench_with_input(
            BenchmarkId::new("payload_8ranks", payload),
            &payload,
            |b, &payload| b.iter(|| exchange_round(8, payload, 8)),
        );
    }
    group.finish();
}

criterion_group!(benches, pcu);
criterion_main!(benches);
