//! PCU phased-exchange micro-benchmarks (§II-D): cost of one neighbour
//! exchange round versus rank count, payload size, and machine shape,
//! including the 32-rank single-node configuration the paper tested on Blue
//! Gene/Q and a 4-node × 8-core multinode layout of the same rank count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pumi_pcu::phased::Exchange;
use pumi_pcu::{execute_on, MachineModel};

fn exchange_round_on(machine: MachineModel, payload: usize, rounds: usize) {
    execute_on(machine, move |c| {
        // Pack from pre-existing data, as real callers do — the bench
        // measures the exchange, not test-data construction.
        let data = vec![0u8; payload];
        for _ in 0..rounds {
            let mut ex = Exchange::new(c);
            let next = (c.rank() + 1) % c.nranks();
            if next != c.rank() {
                ex.to(next).put_bytes(&data);
            }
            let _ = ex.finish();
        }
    });
}

fn exchange_round(threads: usize, payload: usize, rounds: usize) {
    exchange_round_on(MachineModel::new(1, threads), payload, rounds)
}

fn pcu(c: &mut Criterion) {
    let mut group = c.benchmark_group("pcu_exchange");
    group.sample_size(10);
    for threads in [2usize, 8, 32] {
        group.throughput(Throughput::Elements(threads as u64));
        group.bench_with_input(
            BenchmarkId::new("ring_4KiB", threads),
            &threads,
            |b, &threads| b.iter(|| exchange_round(threads, 4096, 8)),
        );
    }
    for payload in [64usize, 4096, 65536] {
        group.throughput(Throughput::Bytes(payload as u64));
        group.bench_with_input(
            BenchmarkId::new("payload_8ranks", payload),
            &payload,
            |b, &payload| b.iter(|| exchange_round(8, payload, 8)),
        );
    }
    // 32 ranks as 4 nodes × 8 cores: the ring crosses node boundaries at
    // every 8th hop, exercising the off-node path and link classification.
    group.throughput(Throughput::Elements(32));
    group.bench_with_input(
        BenchmarkId::new("ring_4KiB_4x8", 32),
        &MachineModel::new(4, 8),
        |b, &m| b.iter(|| exchange_round_on(m, 4096, 8)),
    );
    // Bandwidth-bound variant: at 256KiB per hop the exchange cost is
    // dominated by buffer management, which is what the pooled writers and
    // zero-copy receive path optimise.
    group.throughput(Throughput::Bytes(262144));
    group.bench_with_input(
        BenchmarkId::new("ring_256KiB_4x8", 32),
        &MachineModel::new(4, 8),
        |b, &m| b.iter(|| exchange_round_on(m, 262144, 8)),
    );
    group.finish();
}

criterion_group!(benches, pcu);
criterion_main!(benches);
