//! §I's completeness claim: "the complexity of any mesh adjacency
//! interrogation is O(1) (i.e., not a function of mesh size)".
//!
//! Per-query time for upward (vertex→regions), downward (region→vertices)
//! and same-dimension (region→region via faces) adjacency must stay flat as
//! the mesh grows 8× per step.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pumi_meshgen::tet_box;
use pumi_util::{Dim, MeshEnt};
use std::hint::black_box;

fn adjacency(c: &mut Criterion) {
    let mut group = c.benchmark_group("adjacency_o1");
    for n in [6usize, 12, 24] {
        let mesh = tet_box(n, n, n, 1.0, 1.0, 1.0);
        let elems: Vec<MeshEnt> = mesh.elems().collect();
        let verts: Vec<MeshEnt> = mesh.iter(Dim::Vertex).collect();
        let nq = 1024usize;
        group.throughput(Throughput::Elements(nq as u64));

        group.bench_with_input(
            BenchmarkId::new("region_to_vertices", mesh.num_elems()),
            &mesh,
            |b, mesh| {
                b.iter(|| {
                    let mut acc = 0usize;
                    for i in 0..nq {
                        let e = elems[(i * 7919) % elems.len()];
                        acc += mesh.adjacent(black_box(e), Dim::Vertex).len();
                    }
                    acc
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("vertex_to_regions", mesh.num_elems()),
            &mesh,
            |b, mesh| {
                b.iter(|| {
                    let mut acc = 0usize;
                    for i in 0..nq {
                        let v = verts[(i * 104729) % verts.len()];
                        acc += mesh.adjacent(black_box(v), Dim::Region).len();
                    }
                    acc
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("region_neighbors", mesh.num_elems()),
            &mesh,
            |b, mesh| {
                b.iter(|| {
                    let mut acc = 0usize;
                    for i in 0..nq {
                        let e = elems[(i * 7919) % elems.len()];
                        acc += mesh.adjacent(black_box(e), Dim::Region).len();
                    }
                    acc
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, adjacency);
criterion_main!(benches);
