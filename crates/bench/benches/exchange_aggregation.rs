//! A/B benchmark for node-aware message aggregation (DESIGN.md "Two-level
//! message routing"): dense all-to-all exchanges across a sweep of machine
//! shapes — the same 32 ranks laid out from one fat node (1×32) to many thin
//! nodes (8×4) — routed directly versus through node leaders.
//!
//! Besides the console medians, the bench writes
//! `results/exchange_aggregation.json` with, per configuration, the median
//! iteration time and the off-node envelope counts split into logical
//! (rank-to-rank, at the exchange span) and physical relay traffic
//! (super-messages, under the nested relay span) — the Figs 5/6-style view
//! of what aggregation buys.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pumi_obs::json::Json;
use pumi_obs::report::Report;
use pumi_pcu::phased::{Exchange, ExchangeOpts};
use pumi_pcu::{execute_on, MachineModel};
use std::time::Instant;

const PAYLOAD: usize = 1024;
const ROUNDS: usize = 4;
const SHAPES: [(usize, usize); 4] = [(1, 32), (2, 16), (4, 8), (8, 4)];

fn all_to_all(m: MachineModel, opts: ExchangeOpts) {
    execute_on(m, move |c| {
        for _ in 0..ROUNDS {
            let mut ex = Exchange::with_opts(c, opts);
            for dest in 0..c.nranks() {
                if dest != c.rank() {
                    ex.to(dest).put_bytes(&vec![1u8; PAYLOAD]);
                }
            }
            let _ = ex.finish();
        }
    });
}

/// One instrumented pass: world-reduced per-phase traffic rows.
fn traffic_rows(m: MachineModel, opts: ExchangeOpts) -> Vec<pumi_pcu::obs::WorldTraffic> {
    execute_on(m, move |c| {
        let _ = pumi_obs::span::take();
        let _ = pumi_obs::metrics::take_traffic();
        {
            let _g = pumi_obs::span!("agg_bench");
            let mut ex = Exchange::with_opts(c, opts);
            for dest in 0..c.nranks() {
                if dest != c.rank() {
                    ex.to(dest).put_bytes(&vec![1u8; PAYLOAD]);
                }
            }
            let _ = ex.finish();
        }
        pumi_pcu::obs::reduce_traffic(c)
    })
    .into_iter()
    .flatten()
    .next()
    .unwrap_or_default()
}

fn aggregation(c: &mut Criterion) {
    let mut group = c.benchmark_group("exchange_aggregation");
    group.sample_size(10);
    let mut configs = Vec::new();
    for &(nodes, cores) in &SHAPES {
        let m = MachineModel::new(nodes, cores);
        for (label, opts) in [
            ("direct", ExchangeOpts::direct()),
            ("two_level", ExchangeOpts::two_level()),
        ] {
            group.bench_with_input(
                BenchmarkId::new(label, format!("{nodes}x{cores}")),
                &(m, opts),
                |b, &(m, opts)| b.iter(|| all_to_all(m, opts)),
            );
            // The criterion stand-in prints medians but does not expose
            // them; re-measure for the machine-readable report.
            let mut samples: Vec<u128> = (0..5)
                .map(|_| {
                    let t = Instant::now();
                    all_to_all(m, opts);
                    t.elapsed().as_nanos()
                })
                .collect();
            samples.sort_unstable();
            let median_ns = samples[samples.len() / 2];
            let traffic = traffic_rows(m, opts);
            let off_node = |suffix: &str| {
                traffic
                    .iter()
                    .find(|r| {
                        r.phase.ends_with(suffix) && r.link == pumi_obs::metrics::Link::OffNode
                    })
                    .map(|r| (r.msgs, r.bytes))
                    .unwrap_or((0, 0))
            };
            let (logical_msgs, logical_bytes) = off_node("agg_bench/pcu.exchange");
            let (relay_msgs, relay_bytes) = off_node(pumi_obs::metrics::RELAY_SPAN);
            // Direct routing has no relay hop: its logical envelopes ARE the
            // wire envelopes.
            let (wire_msgs, wire_bytes) = if opts == ExchangeOpts::two_level() {
                (relay_msgs, relay_bytes)
            } else {
                (logical_msgs, logical_bytes)
            };
            configs.push(Json::obj([
                ("nodes", Json::U64(nodes as u64)),
                ("cores_per_node", Json::U64(cores as u64)),
                ("route", Json::str(label)),
                ("median_ns", Json::U64(median_ns as u64)),
                ("off_node_logical_msgs", Json::U64(logical_msgs)),
                ("off_node_logical_bytes", Json::U64(logical_bytes)),
                ("off_node_wire_msgs", Json::U64(wire_msgs)),
                ("off_node_wire_bytes", Json::U64(wire_bytes)),
            ]));
        }
    }
    group.finish();
    let mut report = Report::new("exchange_aggregation");
    report.section(
        "params",
        Json::obj([
            ("payload_bytes", Json::U64(PAYLOAD as u64)),
            ("rounds_per_iter", Json::U64(ROUNDS as u64)),
        ]),
    );
    report.section("configs", Json::Arr(configs));
    if let Some(path) = report.write_or_warn() {
        println!("wrote {}", path.display());
    }
}

criterion_group!(benches, aggregation);
criterion_main!(benches);
