//! Per-thread metrics registry: counters, gauges, histograms, and message
//! traffic accounted per `(span path, link class)`.
//!
//! This is the per-phase extension of PCU's world-total `TrafficCounters`:
//! the runtime keeps calling those for whole-run totals, and additionally
//! reports every message here, where it lands under the phase (span path)
//! that sent it. Cross-rank reduction happens in `pumi_pcu::obs`.

use std::cell::RefCell;
use std::collections::BTreeMap;

/// Link classification, mirroring `pumi_pcu::LinkClass` (this crate sits
/// below the runtime and cannot name that type).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Link {
    /// Rank messaging itself (local pack/unpack only).
    SelfLoop,
    /// Ranks sharing a node (shared-memory path).
    OnNode,
    /// Ranks on different nodes (network path).
    OffNode,
}

impl Link {
    /// All classes, in report order.
    pub const ALL: [Link; 3] = [Link::SelfLoop, Link::OnNode, Link::OffNode];

    /// Stable lowercase name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            Link::SelfLoop => "self",
            Link::OnNode => "on_node",
            Link::OffNode => "off_node",
        }
    }

    fn index(self) -> usize {
        match self {
            Link::SelfLoop => 0,
            Link::OnNode => 1,
            Link::OffNode => 2,
        }
    }
}

/// Span name the PCU runtime nests under an exchange while it moves relay
/// envelopes (node-leader aggregation hops). Reports can separate physical
/// relay traffic (at `.../<exchange>/pcu.relay`) from the logical
/// rank-to-rank traffic recorded at the exchange path itself.
pub const RELAY_SPAN: &str = "pcu.relay";

/// Message/byte totals for one link class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkTotals {
    /// Messages sent.
    pub msgs: u64,
    /// Payload bytes sent.
    pub bytes: u64,
}

/// One row of drained traffic: what a phase sent over one link class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrafficRow {
    /// Span path of the sender (`""` for traffic outside any span).
    pub phase: String,
    /// Link classification.
    pub link: Link,
    /// Totals.
    pub totals: LinkTotals,
}

/// One row of drained frame digests: an order-free fingerprint of the
/// logical frames a phase received over one link class. Two runs that
/// deliver the same frames — in any order — produce identical rows; a run
/// that drops, duplicates, or corrupts a frame does not. The determinism
/// suite compares these across chaos seeds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DigestRow {
    /// Span path of the receiver (`""` outside any span).
    pub phase: String,
    /// Link classification of the frame's origin → receiver link.
    pub link: Link,
    /// Logical frames folded into the digest.
    pub frames: u64,
    /// Commutative fold (wrapping sum) of the per-frame hashes.
    pub digest: u64,
}

/// Value distribution summary (count/sum/min/max).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistStat {
    /// Samples recorded.
    pub count: u64,
    /// Sum of samples.
    pub sum: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
}

impl HistStat {
    fn record(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Mean of the recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

impl Default for HistStat {
    fn default() -> Self {
        HistStat {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

#[derive(Default)]
struct Registry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    hists: BTreeMap<String, HistStat>,
    /// phase path -> per-link totals.
    traffic: BTreeMap<String, [LinkTotals; 3]>,
    /// phase path -> per-link (frame count, digest fold).
    digests: BTreeMap<String, [(u64, u64); 3]>,
}

/// Whether metric recording is compiled in. Callers with per-record setup
/// cost (e.g. hashing a payload before [`record_frame_digest`]) can skip the
/// work entirely when this is `false`.
#[inline]
pub fn enabled() -> bool {
    cfg!(feature = "enabled")
}

thread_local! {
    static REG: RefCell<Registry> = RefCell::new(Registry::default());
}

/// Add `v` to the named monotonic counter.
pub fn counter_add(name: &str, v: u64) {
    if cfg!(feature = "enabled") {
        REG.with(|r| {
            let mut r = r.borrow_mut();
            match r.counters.get_mut(name) {
                Some(c) => *c += v,
                None => {
                    r.counters.insert(name.to_string(), v);
                }
            }
        });
    }
}

/// Set the named gauge to `v` (last write wins).
pub fn gauge_set(name: &str, v: f64) {
    if cfg!(feature = "enabled") {
        REG.with(|r| {
            r.borrow_mut().gauges.insert(name.to_string(), v);
        });
    }
}

/// Record one sample into the named histogram.
pub fn hist_record(name: &str, v: f64) {
    if cfg!(feature = "enabled") {
        REG.with(|r| {
            let mut r = r.borrow_mut();
            match r.hists.get_mut(name) {
                Some(h) => h.record(v),
                None => {
                    let mut h = HistStat::default();
                    h.record(v);
                    r.hists.insert(name.to_string(), h);
                }
            }
        });
    }
}

/// Record one message of `bytes` over `link`, attributed to the calling
/// thread's current span path. Called by the runtime's send path.
pub fn record_traffic(link: Link, bytes: u64) {
    if cfg!(feature = "enabled") {
        crate::span::with_path(|path| {
            REG.with(|r| {
                let mut r = r.borrow_mut();
                if !r.traffic.contains_key(path) {
                    r.traffic.insert(path.to_string(), Default::default());
                }
                let cells = r.traffic.get_mut(path).expect("just inserted");
                let cell = &mut cells[link.index()];
                cell.msgs += 1;
                cell.bytes += bytes;
            });
        });
    }
}

/// Fold one received logical frame's `hash` into the calling thread's
/// digest row for `(current span path, link)`. The fold is a wrapping sum,
/// so it is independent of delivery order — which is exactly what lets two
/// runs under different chaos schedules be compared. Called by the
/// runtime's exchange collection path.
pub fn record_frame_digest(link: Link, hash: u64) {
    if cfg!(feature = "enabled") {
        crate::span::with_path(|path| {
            REG.with(|r| {
                let mut r = r.borrow_mut();
                if !r.digests.contains_key(path) {
                    r.digests.insert(path.to_string(), Default::default());
                }
                let cells = r.digests.get_mut(path).expect("just inserted");
                let cell = &mut cells[link.index()];
                cell.0 += 1;
                cell.1 = cell.1.wrapping_add(hash);
            });
        });
    }
}

/// Drain this thread's counters, sorted by name.
pub fn take_counters() -> Vec<(String, u64)> {
    if cfg!(feature = "enabled") {
        REG.with(|r| {
            std::mem::take(&mut r.borrow_mut().counters)
                .into_iter()
                .collect()
        })
    } else {
        Vec::new()
    }
}

/// Drain this thread's gauges, sorted by name.
pub fn take_gauges() -> Vec<(String, f64)> {
    if cfg!(feature = "enabled") {
        REG.with(|r| {
            std::mem::take(&mut r.borrow_mut().gauges)
                .into_iter()
                .collect()
        })
    } else {
        Vec::new()
    }
}

/// Drain this thread's histograms, sorted by name.
pub fn take_hists() -> Vec<(String, HistStat)> {
    if cfg!(feature = "enabled") {
        REG.with(|r| {
            std::mem::take(&mut r.borrow_mut().hists)
                .into_iter()
                .collect()
        })
    } else {
        Vec::new()
    }
}

/// Drain this thread's per-phase traffic, sorted by phase path then link.
/// Rows with zero messages are omitted.
pub fn take_traffic() -> Vec<TrafficRow> {
    if cfg!(feature = "enabled") {
        REG.with(|r| {
            let traffic = std::mem::take(&mut r.borrow_mut().traffic);
            let mut rows = Vec::new();
            for (phase, cells) in traffic {
                for link in Link::ALL {
                    let totals = cells[link.index()];
                    if totals.msgs > 0 {
                        rows.push(TrafficRow {
                            phase: phase.clone(),
                            link,
                            totals,
                        });
                    }
                }
            }
            rows
        })
    } else {
        Vec::new()
    }
}

/// Drain this thread's per-phase frame digests, sorted by phase path then
/// link. Rows with zero frames are omitted.
pub fn take_digests() -> Vec<DigestRow> {
    if cfg!(feature = "enabled") {
        REG.with(|r| {
            let digests = std::mem::take(&mut r.borrow_mut().digests);
            let mut rows = Vec::new();
            for (phase, cells) in digests {
                for link in Link::ALL {
                    let (frames, digest) = cells[link.index()];
                    if frames > 0 {
                        rows.push(DigestRow {
                            phase: phase.clone(),
                            link,
                            frames,
                            digest,
                        });
                    }
                }
            }
            rows
        })
    } else {
        Vec::new()
    }
}

#[cfg(test)]
#[cfg(feature = "enabled")]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_hists_roundtrip() {
        let _ = (take_counters(), take_gauges(), take_hists());
        counter_add("msgs", 2);
        counter_add("msgs", 3);
        gauge_set("imb", 1.5);
        gauge_set("imb", 1.2);
        hist_record("sz", 10.0);
        hist_record("sz", 30.0);
        assert_eq!(take_counters(), vec![("msgs".to_string(), 5)]);
        assert_eq!(take_gauges(), vec![("imb".to_string(), 1.2)]);
        let hists = take_hists();
        assert_eq!(hists[0].0, "sz");
        let h = hists[0].1;
        assert_eq!(h.count, 2);
        assert_eq!(h.min, 10.0);
        assert_eq!(h.max, 30.0);
        assert_eq!(h.mean(), 20.0);
        assert!(take_counters().is_empty());
    }

    #[test]
    fn traffic_keys_on_current_span_path() {
        let _ = take_traffic();
        record_traffic(Link::OffNode, 100);
        {
            let _g = crate::span!("phase-a");
            record_traffic(Link::OffNode, 10);
            record_traffic(Link::OnNode, 5);
            record_traffic(Link::OffNode, 10);
        }
        let rows = take_traffic();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].phase, "");
        assert_eq!(rows[0].link, Link::OffNode);
        assert_eq!(rows[0].totals.bytes, 100);
        assert_eq!(rows[1].phase, "phase-a");
        assert_eq!(rows[1].link, Link::OnNode);
        assert_eq!(rows[2].link, Link::OffNode);
        assert_eq!(rows[2].totals, LinkTotals { msgs: 2, bytes: 20 });
        let _ = crate::span::take();
    }

    #[test]
    fn frame_digests_fold_order_free() {
        let _ = take_digests();
        let fold = |hashes: &[u64]| {
            let _g = crate::span!("phase-d");
            for &h in hashes {
                record_frame_digest(Link::OnNode, h);
            }
            let rows = take_digests();
            let _ = crate::span::take();
            rows
        };
        let a = fold(&[3, 11, 7]);
        let b = fold(&[7, 3, 11]);
        assert_eq!(a, b);
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].phase, "phase-d");
        assert_eq!(a[0].frames, 3);
        assert_eq!(a[0].digest, 21);
        // A dropped frame changes both count and digest.
        let c = fold(&[3, 11]);
        assert_ne!(a[0].digest, c[0].digest);
    }
}
