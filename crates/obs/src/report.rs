//! The machine-readable report sink.
//!
//! Every bench binary assembles a [`Report`] and writes it to
//! `results/<name>.json` (relative to the working directory, or to
//! `$PUMI_RESULTS_DIR` when set). The JSON schema is flat and stable:
//!
//! ```json
//! {
//!   "schema": 1,
//!   "name": "table2_balance",
//!   "unix_time": 1754550000,
//!   "spans": [ {"path", "count", "total_seconds", "max_rank_seconds"} ],
//!   "traffic": [ {"phase", "link", "msgs", "bytes"} ],
//!   "parma": [ <ParmaTrace objects> ],
//!   ... caller sections ...
//! }
//! ```
//!
//! Report writing is *not* gated on the `enabled` feature: with
//! observability off the hook-fed sections are simply empty, but a bench
//! run's own results (tables, parameters) are still emitted.

use crate::json::Json;
use crate::metrics::HistStat;
use crate::span::SpanStat;
use std::io::Write;
use std::path::PathBuf;

/// An assembling report: ordered `(key, value)` sections under a standard
/// header.
#[derive(Debug, Clone)]
pub struct Report {
    name: String,
    sections: Vec<(String, Json)>,
}

impl Report {
    /// Start a report named `name` (also the output file stem).
    pub fn new(name: &str) -> Report {
        Report {
            name: name.to_string(),
            sections: Vec::new(),
        }
    }

    /// Append a section (insertion order is preserved in the file).
    pub fn section(&mut self, key: &str, value: Json) -> &mut Report {
        self.sections.push((key.to_string(), value));
        self
    }

    /// Render the full report as a JSON object.
    pub fn to_json(&self) -> Json {
        let unix_time = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        let mut pairs = vec![
            ("schema".to_string(), Json::U64(1)),
            ("name".to_string(), Json::str(&self.name)),
            ("unix_time".to_string(), Json::U64(unix_time)),
            ("obs_enabled".to_string(), Json::Bool(crate::enabled())),
        ];
        pairs.extend(self.sections.iter().cloned());
        Json::Obj(pairs)
    }

    /// Write to `results/<name>.json`, creating the directory as needed.
    /// Returns the path written. The destination directory can be overridden
    /// with the `PUMI_RESULTS_DIR` environment variable — cargo runs bench
    /// binaries with the package directory as the working directory, so
    /// snapshot scripts use this to collect reports at the workspace root.
    pub fn write(&self) -> std::io::Result<PathBuf> {
        match std::env::var("PUMI_RESULTS_DIR") {
            Ok(dir) if !dir.is_empty() => self.write_under(&dir),
            _ => self.write_under("results"),
        }
    }

    /// Write to `<dir>/<name>.json`.
    pub fn write_under(&self, dir: &str) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = PathBuf::from(dir).join(format!("{}.json", self.name));
        let mut f = std::fs::File::create(&path)?;
        f.write_all(self.to_json().render().as_bytes())?;
        Ok(path)
    }

    /// [`Report::write`], degraded to a stderr warning on failure. A bench
    /// run's measurements matter more than its report file: an unwritable
    /// results directory must never abort the run.
    pub fn write_or_warn(&self) -> Option<PathBuf> {
        match self.write() {
            Ok(path) => Some(path),
            Err(e) => {
                eprintln!("warning: could not write report '{}': {e}", self.name);
                None
            }
        }
    }
}

/// Render thread-local span aggregates (from [`crate::span::take`]).
pub fn spans_to_json(spans: &[(String, SpanStat)]) -> Json {
    Json::arr(spans.iter().map(|(path, s)| {
        Json::obj([
            ("path", Json::str(path)),
            ("count", Json::U64(s.count)),
            ("total_seconds", Json::F64(s.nanos as f64 * 1e-9)),
        ])
    }))
}

/// Render drained histograms (from [`crate::metrics::take_hists`]).
pub fn hists_to_json(hists: &[(String, HistStat)]) -> Json {
    Json::arr(hists.iter().map(|(name, h)| {
        Json::obj([
            ("name", Json::str(name)),
            ("count", Json::U64(h.count)),
            ("sum", Json::F64(h.sum)),
            ("min", Json::F64(h.min)),
            ("max", Json::F64(h.max)),
            ("mean", Json::F64(h.mean())),
        ])
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_renders_header_and_sections() {
        let mut r = Report::new("unit");
        r.section("params", Json::obj([("n", Json::U64(4))]));
        let j = r.to_json().render();
        assert!(j.contains("\"schema\": 1"));
        assert!(j.contains("\"name\": \"unit\""));
        assert!(j.contains("\"params\""));
    }

    #[test]
    fn writes_to_disk() {
        let dir = std::env::temp_dir().join("pumi-obs-report-test");
        let Some(dir) = dir.to_str() else {
            panic!("temp dir is not UTF-8: {dir:?}");
        };
        let path = match Report::new("t").write_under(dir) {
            Ok(p) => p,
            Err(e) => panic!("write_under({dir}) failed: {e}"),
        };
        let body = match std::fs::read_to_string(&path) {
            Ok(b) => b,
            Err(e) => panic!("report at {} unreadable: {e}", path.display()),
        };
        assert!(body.starts_with('{'));
        assert!(body.ends_with("}\n"));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn unwritable_destination_degrades_to_warning() {
        // A file where the directory should be → create_dir_all fails.
        let blocker = std::env::temp_dir().join("pumi-obs-report-blocker");
        std::fs::write(&blocker, b"not a directory").expect("set up blocker file");
        let dest = blocker.join("sub");
        let r = Report::new("degrade");
        assert!(r
            .write_under(dest.to_str().expect("utf-8 temp path"))
            .is_err());
        // write_or_warn on the same failure must swallow it.
        std::env::set_var("PUMI_RESULTS_DIR", dest.to_str().expect("utf-8 temp path"));
        assert_eq!(r.write_or_warn(), None);
        std::env::remove_var("PUMI_RESULTS_DIR");
        let _ = std::fs::remove_file(blocker);
    }

    #[test]
    fn spans_section_shape() {
        let spans = vec![(
            "migrate/pcu.exchange".to_string(),
            SpanStat {
                count: 3,
                nanos: 2_000_000_000,
            },
        )];
        let j = spans_to_json(&spans).render();
        assert!(j.contains("\"path\": \"migrate/pcu.exchange\""));
        assert!(j.contains("\"total_seconds\": 2.0"));
    }
}
