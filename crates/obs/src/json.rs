//! A minimal JSON value and renderer.
//!
//! The workspace builds with zero external dependencies (see
//! `vendor/README.md`), so there is no serde; reports are assembled as
//! explicit [`Json`] trees and rendered with a small pretty-printer. Object
//! keys keep insertion order — reports read top-to-bottom the way they were
//! built.

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (kept exact; byte counts exceed f64 precision).
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A float. Non-finite values render as `null` (JSON has no NaN).
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from `(key, value)` pairs.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Build an array.
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// Build a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Render as pretty-printed JSON (2-space indent, trailing newline).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(x) => out.push_str(&x.to_string()),
            Json::I64(x) => out.push_str(&x.to_string()),
            Json::F64(x) => {
                if x.is_finite() {
                    // `{:?}` is the shortest round-trip form ("0.1", "1.5e30").
                    out.push_str(&format!("{x:?}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, depth + 1);
                    item.write(out, depth + 1);
                }
                newline_indent(out, depth);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, depth + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, depth + 1);
                }
                newline_indent(out, depth);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, depth: usize) {
    out.push('\n');
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}
impl From<u64> for Json {
    fn from(x: u64) -> Json {
        Json::U64(x)
    }
}
impl From<u32> for Json {
    fn from(x: u32) -> Json {
        Json::U64(x as u64)
    }
}
impl From<usize> for Json {
    fn from(x: usize) -> Json {
        Json::U64(x as u64)
    }
}
impl From<i64> for Json {
    fn from(x: i64) -> Json {
        Json::I64(x)
    }
}
impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::F64(x)
    }
}
impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.render(), "null\n");
        assert_eq!(Json::Bool(true).render(), "true\n");
        assert_eq!(Json::U64(u64::MAX).render(), format!("{}\n", u64::MAX));
        assert_eq!(Json::I64(-3).render(), "-3\n");
        assert_eq!(Json::F64(0.1).render(), "0.1\n");
        assert_eq!(Json::F64(f64::NAN).render(), "null\n");
        assert_eq!(Json::str("a\"b\nc").render(), "\"a\\\"b\\nc\"\n");
    }

    #[test]
    fn nested_structure_renders_stably() {
        let j = Json::obj([
            ("name", Json::str("t1")),
            ("xs", Json::arr([Json::U64(1), Json::U64(2)])),
            ("empty", Json::obj::<String>([])),
        ]);
        assert_eq!(
            j.render(),
            "{\n  \"name\": \"t1\",\n  \"xs\": [\n    1,\n    2\n  ],\n  \"empty\": {}\n}\n"
        );
    }

    #[test]
    fn control_chars_escape_as_unicode() {
        assert_eq!(Json::str("\u{1}").render(), "\"\\u0001\"\n");
    }
}
