//! Scoped phase timers.
//!
//! A span is a named scope: entering pushes onto a per-thread stack, dropping
//! the guard pops it and adds the inclusive elapsed time to the aggregate for
//! the span's *path* — the slash-joined names of every span on the stack, so
//! `migrate` calling `pcu.exchange` aggregates under
//! `"migrate/pcu.exchange"`. Paths keep caller context without any manual
//! plumbing, and [`metrics::record_traffic`](crate::metrics::record_traffic)
//! uses the innermost path to attribute message traffic to phases.
//!
//! Guards must drop in LIFO order — the natural result of scope-based use:
//!
//! ```
//! {
//!     let _g = pumi_obs::span!("migrate.pack");
//!     // ... work ...
//! } // elapsed time recorded here
//! ```
//!
//! Times are *inclusive*: a parent's total contains its children's.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::time::Instant;

/// Aggregate for one span path on one thread.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// Times the span was entered.
    pub count: u64,
    /// Total inclusive nanoseconds across entries.
    pub nanos: u64,
}

struct Frame {
    start: Option<Instant>,
    /// Length of the joined path before this frame was pushed.
    path_len: usize,
}

#[derive(Default)]
struct SpanState {
    stack: Vec<Frame>,
    /// Slash-joined names of the active stack.
    path: String,
    agg: BTreeMap<String, SpanStat>,
}

thread_local! {
    static STATE: RefCell<SpanState> = RefCell::new(SpanState::default());
}

/// Guard returned by [`enter`]; records the elapsed time when dropped.
#[must_use = "a span only measures while its guard is alive"]
pub struct SpanGuard {
    _priv: (),
}

/// Enter a span named `name`. Prefer the [`span!`](crate::span!) macro.
pub fn enter(name: &str) -> SpanGuard {
    if cfg!(feature = "enabled") {
        STATE.with(|s| {
            let mut s = s.borrow_mut();
            let path_len = s.path.len();
            if path_len > 0 {
                s.path.push('/');
            }
            s.path.push_str(name);
            s.stack.push(Frame {
                start: Some(Instant::now()),
                path_len,
            });
        });
    }
    SpanGuard { _priv: () }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if cfg!(feature = "enabled") {
            STATE.with(|s| {
                let mut s = s.borrow_mut();
                let frame = s.stack.pop().expect("span guard dropped twice");
                let nanos = frame
                    .start
                    .map(|t| t.elapsed().as_nanos() as u64)
                    .unwrap_or(0);
                let path = s.path.clone();
                let stat = s.agg.entry(path).or_default();
                stat.count += 1;
                stat.nanos += nanos;
                s.path.truncate(frame.path_len);
            });
        }
    }
}

/// Run `f` with the current span path (`""` outside any span).
pub fn with_path<R>(f: impl FnOnce(&str) -> R) -> R {
    if cfg!(feature = "enabled") {
        STATE.with(|s| f(&s.borrow().path))
    } else {
        f("")
    }
}

/// Drain this thread's aggregated spans, sorted by path. Active (not yet
/// dropped) spans are unaffected and will aggregate into the fresh map.
pub fn take() -> Vec<(String, SpanStat)> {
    if cfg!(feature = "enabled") {
        STATE.with(|s| {
            std::mem::take(&mut s.borrow_mut().agg)
                .into_iter()
                .collect()
        })
    } else {
        Vec::new()
    }
}

/// Enter a span scope: `let _g = pumi_obs::span!("migrate.pack");`.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span::enter($name)
    };
}

#[cfg(test)]
#[cfg(feature = "enabled")]
mod tests {
    use super::*;

    #[test]
    fn nesting_joins_paths() {
        let _ = take();
        {
            let _a = enter("outer");
            with_path(|p| assert_eq!(p, "outer"));
            {
                let _b = enter("inner");
                with_path(|p| assert_eq!(p, "outer/inner"));
            }
            {
                let _b = enter("inner");
            }
        }
        with_path(|p| assert_eq!(p, ""));
        let spans = take();
        let paths: Vec<&str> = spans.iter().map(|(p, _)| p.as_str()).collect();
        assert_eq!(paths, vec!["outer", "outer/inner"]);
        assert_eq!(spans[1].1.count, 2);
        assert_eq!(spans[0].1.count, 1);
        assert!(
            spans[0].1.nanos >= spans[1].1.nanos,
            "parent time is inclusive"
        );
    }

    #[test]
    fn take_drains() {
        let _ = take();
        drop(enter("x"));
        assert_eq!(take().len(), 1);
        assert!(take().is_empty());
    }

    #[test]
    fn macro_expands_to_guard() {
        let _ = take();
        {
            let _g = crate::span!("via-macro");
        }
        assert_eq!(take()[0].0, "via-macro");
    }
}
