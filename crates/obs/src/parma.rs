//! ParMA iteration recorder.
//!
//! `parma::improve` drives one diffusion loop per entity type in priority
//! order; the paper's Fig 12 is exactly the trajectory of that loop. This
//! module records it: per-iteration global imbalance, how many elements were
//! planned and how many actually moved, and why each stage stopped
//! (converged, stagnated, no candidates, iteration cap).
//!
//! The recorder is thread-local like everything in this crate. `improve`
//! feeds it values that are already world-global (gathered loads, allreduced
//! plan sizes), so every rank records an identical trace and rank 0's copy
//! is canonical — [`take`] on rank 0 after the collective returns is the
//! pattern the bench binaries use.

use crate::json::Json;
use std::cell::RefCell;

/// One diffusion iteration of one balancing stage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterSample {
    /// Iteration number within the stage (1-based).
    pub iter: u32,
    /// Global imbalance % of the balanced type at iteration entry.
    pub imbalance_pct: f64,
    /// Elements scheduled for migration world-wide after admission.
    pub planned: u64,
    /// Elements actually migrated world-wide.
    pub moved: u64,
}

/// Why a balancing stage ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// Imbalance reached the tolerance.
    Converged,
    /// Three consecutive iterations without meaningful progress (§III-B's
    /// motivation for heavy part splitting).
    Stagnated,
    /// No part could schedule any migration.
    NoCandidates,
    /// The per-type iteration cap was hit.
    MaxIters,
}

impl StopReason {
    /// Stable lowercase name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            StopReason::Converged => "converged",
            StopReason::Stagnated => "stagnated",
            StopReason::NoCandidates => "no_candidates",
            StopReason::MaxIters => "max_iters",
        }
    }
}

/// One entity-type balancing stage.
#[derive(Debug, Clone, PartialEq)]
pub struct StageTrace {
    /// The balanced entity type ("Vtx", "Edge", ...).
    pub dim: String,
    /// Imbalance % at stage entry.
    pub initial_pct: f64,
    /// Imbalance % at stage exit.
    pub final_pct: f64,
    /// Why the stage stopped.
    pub stop: StopReason,
    /// The per-iteration trajectory.
    pub iters: Vec<IterSample>,
}

/// One full `improve` run.
#[derive(Debug, Clone, PartialEq)]
pub struct ParmaTrace {
    /// Caller-supplied label (e.g. the test/priority being run).
    pub label: String,
    /// Stages in balancing order.
    pub stages: Vec<StageTrace>,
    /// Wall-clock seconds (max over ranks).
    pub seconds: f64,
    /// Total elements migrated.
    pub elements_moved: u64,
}

impl ParmaTrace {
    /// Render as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("label", Json::str(&self.label)),
            ("seconds", Json::F64(self.seconds)),
            ("elements_moved", Json::U64(self.elements_moved)),
            (
                "stages",
                Json::arr(self.stages.iter().map(|s| {
                    Json::obj([
                        ("dim", Json::str(&s.dim)),
                        ("initial_pct", Json::F64(s.initial_pct)),
                        ("final_pct", Json::F64(s.final_pct)),
                        ("stop", Json::str(s.stop.name())),
                        (
                            "iterations",
                            Json::arr(s.iters.iter().map(|it| {
                                Json::obj([
                                    ("iter", Json::U64(it.iter as u64)),
                                    ("imbalance_pct", Json::F64(it.imbalance_pct)),
                                    ("planned", Json::U64(it.planned)),
                                    ("moved", Json::U64(it.moved)),
                                ])
                            })),
                        ),
                    ])
                })),
            ),
        ])
    }
}

#[derive(Default)]
struct RecState {
    current: Option<ParmaTrace>,
    stage: Option<StageTrace>,
    done: Vec<ParmaTrace>,
}

thread_local! {
    static REC: RefCell<RecState> = RefCell::new(RecState::default());
}

/// Begin recording an `improve` run. An unfinished previous run is dropped.
pub fn begin(label: &str) {
    if cfg!(feature = "enabled") {
        REC.with(|r| {
            let mut r = r.borrow_mut();
            r.stage = None;
            r.current = Some(ParmaTrace {
                label: label.to_string(),
                stages: Vec::new(),
                seconds: 0.0,
                elements_moved: 0,
            });
        });
    }
}

/// Begin a balancing stage for entity type `dim`.
pub fn stage_begin(dim: &str, initial_pct: f64) {
    if cfg!(feature = "enabled") {
        REC.with(|r| {
            r.borrow_mut().stage = Some(StageTrace {
                dim: dim.to_string(),
                initial_pct,
                final_pct: initial_pct,
                stop: StopReason::Converged,
                iters: Vec::new(),
            });
        });
    }
}

/// Record one diffusion iteration of the current stage.
pub fn iter(imbalance_pct: f64, planned: u64, moved: u64) {
    if cfg!(feature = "enabled") {
        REC.with(|r| {
            if let Some(stage) = r.borrow_mut().stage.as_mut() {
                let iter = stage.iters.len() as u32 + 1;
                stage.iters.push(IterSample {
                    iter,
                    imbalance_pct,
                    planned,
                    moved,
                });
            }
        });
    }
}

/// End the current stage.
pub fn stage_end(final_pct: f64, stop: StopReason) {
    if cfg!(feature = "enabled") {
        REC.with(|r| {
            let mut r = r.borrow_mut();
            if let Some(mut stage) = r.stage.take() {
                stage.final_pct = final_pct;
                stage.stop = stop;
                if let Some(cur) = r.current.as_mut() {
                    cur.stages.push(stage);
                }
            }
        });
    }
}

/// End the run begun by [`begin`], moving it to the completed list.
pub fn end(seconds: f64, elements_moved: u64) {
    if cfg!(feature = "enabled") {
        REC.with(|r| {
            let mut r = r.borrow_mut();
            r.stage = None;
            if let Some(mut cur) = r.current.take() {
                cur.seconds = seconds;
                cur.elements_moved = elements_moved;
                r.done.push(cur);
            }
        });
    }
}

/// Drain this thread's completed traces.
pub fn take() -> Vec<ParmaTrace> {
    if cfg!(feature = "enabled") {
        REC.with(|r| std::mem::take(&mut r.borrow_mut().done))
    } else {
        Vec::new()
    }
}

#[cfg(test)]
#[cfg(feature = "enabled")]
mod tests {
    use super::*;

    #[test]
    fn records_a_full_run() {
        let _ = take();
        begin("t1");
        stage_begin("Vtx", 40.0);
        iter(40.0, 100, 90);
        iter(12.0, 30, 30);
        stage_end(4.0, StopReason::Converged);
        stage_begin("Rgn", 6.0);
        stage_end(6.0, StopReason::NoCandidates);
        end(1.25, 120);
        let traces = take();
        assert_eq!(traces.len(), 1);
        let t = &traces[0];
        assert_eq!(t.label, "t1");
        assert_eq!(t.stages.len(), 2);
        assert_eq!(t.stages[0].iters.len(), 2);
        assert_eq!(t.stages[0].iters[1].iter, 2);
        assert_eq!(t.stages[0].stop, StopReason::Converged);
        assert_eq!(t.stages[1].stop, StopReason::NoCandidates);
        assert_eq!(t.elements_moved, 120);
        assert!(take().is_empty());
    }

    #[test]
    fn json_shape_is_stable() {
        let _ = take();
        begin("j");
        stage_begin("Edge", 10.0);
        iter(10.0, 5, 5);
        stage_end(2.0, StopReason::Stagnated);
        end(0.5, 5);
        let j = take()[0].to_json().render();
        assert!(j.contains("\"label\": \"j\""));
        assert!(j.contains("\"stop\": \"stagnated\""));
        assert!(j.contains("\"planned\": 5"));
    }
}
