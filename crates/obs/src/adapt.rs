//! Adaptive-loop round recorder.
//!
//! The paper's Fig. 13 plots the imbalance trajectory of the parallel
//! adaptive loop: each round predicts the post-adaptation load, rebalances
//! on the prediction, adapts, and measures what actually happened. This
//! module records that trajectory one row per round, mirroring the
//! [`crate::parma`] recorder's thread-local/rank-0-canonical pattern: the
//! driver feeds it values that are already world-global, so every rank
//! records an identical trace and rank 0's copy is the one written to
//! `results/*.json`.

use crate::json::Json;
use std::cell::RefCell;

/// One adapt→predict→balance round of the adaptive loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoundRow {
    /// Round number (1-based).
    pub round: u32,
    /// Element imbalance % before this round's balancing step.
    pub before_pct: f64,
    /// *Predicted* (weighted) imbalance % — the load ParMA actually
    /// balances, from `pumi_adapt::predict`.
    pub predicted_pct: f64,
    /// Predicted imbalance % after the ParMA step.
    pub balanced_pct: f64,
    /// *Actual* element imbalance % measured after adaptation ran (before
    /// any touch-up).
    pub actual_pct: f64,
    /// Element imbalance % at the end of the round, after the post-adapt
    /// touch-up pass (equal to `actual_pct` when the touch-up was gated
    /// off).
    pub final_pct: f64,
    /// Prediction error of this round:
    /// `Σ_p |predicted_p − realized_p| / Σ_p realized_p · 100` over parts.
    pub prediction_error_pct: f64,
    /// Calibration factors applied to this round's weights, indexed by
    /// branch: `[refine, keep, collapse]`.
    pub correction: [f64; 3],
    /// Edge splits performed by the adaptation.
    pub splits: u64,
    /// Edge collapses performed by the adaptation.
    pub collapses: u64,
    /// Elements migrated by the speculative (pre-adapt) ParMA step.
    pub elements_moved: u64,
    /// Elements migrated by the post-adapt touch-up pass (0 when gated
    /// off).
    pub touchup_moved: u64,
    /// Global element count after adaptation.
    pub elements: u64,
    /// Bytes exchanged between ranks on the *same* machine node during this
    /// round (migration + sync traffic), summed over the world.
    pub on_node_bytes: u64,
    /// Bytes exchanged between ranks on *different* machine nodes during
    /// this round. On a flat machine model this is all non-self traffic.
    pub off_node_bytes: u64,
}

/// One full adaptive-loop run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AdaptTrace {
    /// Caller-supplied label (mesh/size-field being run).
    pub label: String,
    /// Rounds in execution order.
    pub rounds: Vec<RoundRow>,
    /// Wall-clock seconds for the whole loop (max over ranks).
    pub seconds: f64,
}

impl AdaptTrace {
    /// Render as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("label", Json::str(&self.label)),
            ("seconds", Json::F64(self.seconds)),
            (
                "rounds",
                Json::arr(self.rounds.iter().map(|r| {
                    Json::obj([
                        ("round", Json::U64(r.round as u64)),
                        ("before_pct", Json::F64(r.before_pct)),
                        ("predicted_pct", Json::F64(r.predicted_pct)),
                        ("balanced_pct", Json::F64(r.balanced_pct)),
                        ("actual_pct", Json::F64(r.actual_pct)),
                        ("final_pct", Json::F64(r.final_pct)),
                        ("prediction_error_pct", Json::F64(r.prediction_error_pct)),
                        ("corr_refine", Json::F64(r.correction[0])),
                        ("corr_keep", Json::F64(r.correction[1])),
                        ("corr_collapse", Json::F64(r.correction[2])),
                        ("splits", Json::U64(r.splits)),
                        ("collapses", Json::U64(r.collapses)),
                        ("elements_moved", Json::U64(r.elements_moved)),
                        ("touchup_moved", Json::U64(r.touchup_moved)),
                        ("elements", Json::U64(r.elements)),
                        ("on_node_bytes", Json::U64(r.on_node_bytes)),
                        ("off_node_bytes", Json::U64(r.off_node_bytes)),
                    ])
                })),
            ),
        ])
    }
}

#[derive(Default)]
struct RecState {
    current: Option<AdaptTrace>,
    done: Vec<AdaptTrace>,
}

thread_local! {
    static REC: RefCell<RecState> = RefCell::new(RecState::default());
}

/// Begin recording an adaptive-loop run. An unfinished previous run is
/// dropped.
pub fn begin(label: &str) {
    if cfg!(feature = "enabled") {
        REC.with(|r| {
            r.borrow_mut().current = Some(AdaptTrace {
                label: label.to_string(),
                ..AdaptTrace::default()
            });
        });
    }
}

/// Record one completed round. The row's `round` field is overwritten with
/// its 1-based position.
pub fn round(mut row: RoundRow) {
    if cfg!(feature = "enabled") {
        REC.with(|r| {
            if let Some(cur) = r.borrow_mut().current.as_mut() {
                row.round = cur.rounds.len() as u32 + 1;
                cur.rounds.push(row);
            }
        });
    }
}

/// End the run begun by [`begin`], moving it to the completed list.
pub fn end(seconds: f64) {
    if cfg!(feature = "enabled") {
        REC.with(|r| {
            let mut r = r.borrow_mut();
            if let Some(mut cur) = r.current.take() {
                cur.seconds = seconds;
                r.done.push(cur);
            }
        });
    }
}

/// Drain this thread's completed traces.
pub fn take() -> Vec<AdaptTrace> {
    if cfg!(feature = "enabled") {
        REC.with(|r| std::mem::take(&mut r.borrow_mut().done))
    } else {
        Vec::new()
    }
}

#[cfg(test)]
#[cfg(feature = "enabled")]
mod tests {
    use super::*;

    fn row(before: f64) -> RoundRow {
        RoundRow {
            round: 0,
            before_pct: before,
            predicted_pct: before + 5.0,
            balanced_pct: 4.0,
            actual_pct: 6.0,
            final_pct: 5.0,
            prediction_error_pct: 12.5,
            correction: [0.5, 1.0, 2.0],
            splits: 100,
            collapses: 10,
            elements_moved: 40,
            touchup_moved: 7,
            elements: 5000,
            on_node_bytes: 2048,
            off_node_bytes: 512,
        }
    }

    #[test]
    fn records_rounds_in_order() {
        let _ = take();
        begin("shock");
        round(row(30.0));
        round(row(12.0));
        end(2.5);
        let traces = take();
        assert_eq!(traces.len(), 1);
        let t = &traces[0];
        assert_eq!(t.label, "shock");
        assert_eq!(t.rounds.len(), 2);
        assert_eq!(t.rounds[0].round, 1);
        assert_eq!(t.rounds[1].round, 2);
        assert_eq!(t.rounds[1].before_pct, 12.0);
        assert!(take().is_empty());
    }

    #[test]
    fn json_shape_is_stable() {
        let _ = take();
        begin("j");
        round(row(20.0));
        end(0.1);
        let j = take()[0].to_json().render();
        assert!(j.contains("\"label\": \"j\""));
        assert!(j.contains("\"predicted_pct\": 25"));
        assert!(j.contains("\"elements\": 5000"));
        assert!(j.contains("\"prediction_error_pct\": 12.5"));
        assert!(j.contains("\"corr_collapse\": 2"));
        assert!(j.contains("\"touchup_moved\": 7"));
        assert!(j.contains("\"off_node_bytes\": 512"));
    }
}
