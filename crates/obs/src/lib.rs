//! Observability for the PUMI/ParMA reproduction.
//!
//! The paper's performance story (Tables II/III, Figs 5/6/12/13) is told in
//! three currencies: wall time per phase, message traffic per link class, and
//! the per-iteration trajectory of the ParMA balancer. This crate records all
//! three on the rank that produced them and renders them as machine-readable
//! JSON, so every bench binary can emit a `results/*.json` next to its tables.
//!
//! Components:
//! * [`mod@span`] — scoped phase timers (`let _g = span!("migrate.pack");`) that
//!   aggregate count + inclusive nanoseconds per slash-joined span path,
//! * [`metrics`] — a per-thread registry of counters, gauges and histograms,
//!   plus message-traffic accounting per `(span path, link class)` — the
//!   per-phase extension of PCU's world-total `TrafficCounters`,
//! * [`parma`] — the ParMA iteration recorder: imbalance trajectory,
//!   migration sizes and stop reasons per balancing stage,
//! * [`adapt`] — the adaptive-loop round recorder: predicted vs balanced vs
//!   actual imbalance per adapt→predict→balance round (Fig. 13),
//! * [`json`] — a dependency-free JSON value with a pretty renderer,
//! * [`report`] — the `results/<name>.json` sink.
//!
//! # Threading model
//!
//! One simulated rank is one OS thread, so *all* state here is thread-local:
//! recording never takes a lock and never syncs with other ranks. Cross-rank
//! aggregation is a collective concern and lives where the communicator
//! lives (`pumi_pcu::obs`), not here.
//!
//! # Disabling
//!
//! Everything is gated on the `enabled` feature (re-exported by dependents
//! as their default-on `obs` feature). With the feature off, the recording
//! functions still exist but compile to no-ops and the drain functions
//! return empty collections, so hook call sites need no `cfg` attributes.

pub mod adapt;
pub mod json;
pub mod metrics;
pub mod parma;
pub mod report;
pub mod span;

pub use json::Json;
pub use span::{SpanGuard, SpanStat};

/// Whether recording is compiled in (the `enabled` feature).
pub const fn enabled() -> bool {
    cfg!(feature = "enabled")
}
