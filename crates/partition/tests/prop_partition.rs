//! Property tests for the partitioners: total coverage, label ranges,
//! balance bounds, and nesting of local splits, over randomized domains.

use proptest::prelude::*;
use pumi_meshgen::{jitter, tet_box, tri_rect};
use pumi_partition::{
    partition_mesh, rcb, rib, split_labels, two_level_partition, PartitionQuality,
};
use pumi_util::stats::imbalance;
use pumi_util::Dim;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every partitioner assigns every element a label in range, uses every
    /// part, and keeps element imbalance bounded.
    #[test]
    fn all_partitioners_cover_and_balance(
        nx in 6usize..14,
        ny in 6usize..14,
        k in 2usize..9,
        seed in 0u64..1000,
    ) {
        let mut m = tri_rect(nx, ny, 1.0, 1.0);
        jitter(&mut m, 0.2, seed);
        for labels in [partition_mesh(&m, k), rcb(&m, k), rib(&m, k)] {
            let mut loads = vec![0f64; k];
            for e in m.iter(m.elem_dim_t()) {
                let l = labels[e.idx()] as usize;
                prop_assert!(l < k, "label {l} out of range");
                loads[l] += 1.0;
            }
            prop_assert!(loads.iter().all(|&l| l > 0.0), "empty part: {loads:?}");
            prop_assert!(imbalance(&loads) < 1.35, "imbalance {loads:?}");
        }
    }

    /// Local splitting nests: fine label / k == coarse label, and every
    /// fine part within a coarse part is non-empty.
    #[test]
    fn local_split_nests(k in 2usize..5, sub in 2usize..5) {
        let m = tet_box(5, 5, 5, 1.0, 1.0, 1.0);
        let coarse = partition_mesh(&m, k);
        let fine = split_labels(&m, &coarse, k, sub);
        let mut counts = vec![0usize; k * sub];
        for e in m.iter(m.elem_dim_t()) {
            prop_assert_eq!(fine[e.idx()] as usize / sub, coarse[e.idx()] as usize);
            counts[fine[e.idx()] as usize] += 1;
        }
        prop_assert!(counts.iter().all(|&c| c > 0), "{counts:?}");
    }

    /// Two-level partitions place each node's parts contiguously and stay
    /// balanced.
    #[test]
    fn two_level_balance(nodes in 2usize..4, cores in 2usize..5) {
        let m = tet_box(5, 5, 5, 1.0, 1.0, 1.0);
        let labels = two_level_partition(&m, nodes, cores);
        let q = PartitionQuality::compute(&m, &labels, nodes * cores);
        prop_assert!(q.imbalance_pct(Dim::Region) < 35.0);
        prop_assert!(q.stats(Dim::Region).min > 0.0);
    }

    /// Partition quality accounting is self-consistent: per-part element
    /// counts sum to the mesh total; boundary copies are at least the
    /// distinct boundary entities.
    #[test]
    fn quality_self_consistent(k in 2usize..8) {
        let m = tri_rect(10, 10, 1.0, 1.0);
        let labels = partition_mesh(&m, k);
        let q = PartitionQuality::compute(&m, &labels, k);
        let total: f64 = q.counts[2].iter().sum();
        prop_assert_eq!(total as usize, m.num_elems());
        // Vertex copies: sum over parts >= distinct vertices; difference =
        // boundary duplication.
        let vsum: f64 = q.counts[0].iter().sum();
        let dup = vsum as usize - m.count(Dim::Vertex);
        // Each boundary vertex on r parts contributes r copies and r-1 dups.
        prop_assert!(dup < q.boundary_copies[0]);
        prop_assert!(q.boundary_copies[0] <= 2 * dup);
    }
}

/// Weighted partitioning balances the *weights*, not the element counts —
/// the predictive-balancing contract.
#[test]
fn weighted_partition_balances_weights() {
    use pumi_partition::partition_mesh_weighted;
    let m = tri_rect(12, 12, 1.0, 1.0);
    // Elements on the left half cost 9x.
    let weight = |e: pumi_util::MeshEnt| {
        if m.centroid(e)[0] < 0.5 {
            9.0
        } else {
            1.0
        }
    };
    let k = 4;
    let labels = partition_mesh_weighted(&m, k, weight);
    let mut wloads = vec![0f64; k];
    let mut eloads = vec![0f64; k];
    for e in m.iter(m.elem_dim_t()) {
        wloads[labels[e.idx()] as usize] += weight(e);
        eloads[labels[e.idx()] as usize] += 1.0;
    }
    assert!(imbalance(&wloads) < 1.2, "weights not balanced: {wloads:?}");
    // Element counts end up more skewed than the weights (parts rich in
    // cheap right-half elements must hold more of them).
    assert!(
        imbalance(&eloads) > imbalance(&wloads),
        "{eloads:?} vs {wloads:?}"
    );
}
