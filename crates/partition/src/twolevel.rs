//! Two-level hybrid mesh partitioning (§II-D).
//!
//! "The partitioned mesh representation of PUMI is under improvement
//! towards a hybrid mesh partitioning algorithm which involves first
//! partitioning a mesh into nodes and subsequently to the cores on the
//! nodes. Part handles assigned to threads on the same node shared memory
//! should result in faster communications and reduced memory usage."
//!
//! [`two_level_partition`] does exactly that: a global partition into
//! node-sized blocks, then an independent local partition of each block
//! into per-core parts. Because the second level only cuts *within* a
//! node's block, every second-level boundary is an on-node boundary by
//! construction — the off-node surface is decided entirely by the first
//! level, which has far fewer, larger parts and therefore proportionally
//! less surface.

use crate::graph::DualGraph;
use crate::local::split_labels;
use crate::multilevel::{partition_graph, GraphPartOpts};
use pumi_mesh::Mesh;
use pumi_util::{Dim, PartId};

/// Partition `mesh` for a machine with `nodes` nodes of `cores_per_node`
/// cores: parts `node*cores_per_node ..` belong to `node`. Returns element
/// labels over `nodes * cores_per_node` parts.
pub fn two_level_partition(mesh: &Mesh, nodes: usize, cores_per_node: usize) -> Vec<PartId> {
    assert!(nodes >= 1 && cores_per_node >= 1);
    let g = DualGraph::build(mesh);
    let node_labels = partition_graph(&g, nodes, GraphPartOpts::default());
    let mut labels = vec![0 as PartId; mesh.index_space(mesh.elem_dim_t())];
    for (node, &e) in g.elems.iter().enumerate() {
        labels[e.idx()] = node_labels[node];
    }
    split_labels(mesh, &labels, nodes, cores_per_node)
}

/// Fraction of part-boundary entity copies of dimension `d` that cross
/// nodes, for a labeling where part `p` lives on node `p / cores_per_node`.
/// The quality measure a hybrid partition optimizes (lower is better).
pub fn off_node_share(mesh: &Mesh, labels: &[PartId], cores_per_node: usize, d: Dim) -> f64 {
    let elem_d = mesh.elem_dim_t();
    let mut on = 0usize;
    let mut off = 0usize;
    for a in mesh.iter(d) {
        let mut parts: Vec<PartId> = mesh
            .adjacent(a, elem_d)
            .iter()
            .map(|e| labels[e.idx()])
            .collect();
        parts.sort_unstable();
        parts.dedup();
        if parts.len() < 2 {
            continue;
        }
        let node0 = parts[0] as usize / cores_per_node;
        if parts.iter().all(|&p| p as usize / cores_per_node == node0) {
            on += parts.len();
        } else {
            off += parts.len();
        }
    }
    if on + off == 0 {
        0.0
    } else {
        off as f64 / (on + off) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition_mesh;
    use pumi_meshgen::{tet_box, tri_rect};
    use pumi_util::stats::imbalance;

    #[test]
    fn two_level_covers_all_parts_and_balances() {
        let m = tri_rect(16, 16, 1.0, 1.0);
        let labels = two_level_partition(&m, 4, 4);
        let mut loads = vec![0f64; 16];
        for e in m.iter(m.elem_dim_t()) {
            loads[labels[e.idx()] as usize] += 1.0;
        }
        assert!(loads.iter().all(|&l| l > 0.0), "{loads:?}");
        assert!(imbalance(&loads) < 1.15, "{loads:?}");
    }

    #[test]
    fn second_level_nests_in_first() {
        let m = tri_rect(12, 12, 1.0, 1.0);
        let nodes = 3;
        let cores = 4;
        let g = DualGraph::build(&m);
        let node_labels = partition_graph(&g, nodes, GraphPartOpts::default());
        let labels = two_level_partition(&m, nodes, cores);
        // The fine part's node must match a valid node id; nesting is by
        // construction (split_labels), checked by range.
        for (node, &e) in g.elems.iter().enumerate() {
            let fine = labels[e.idx()] as usize;
            assert!(fine / cores < 3);
            let _ = node_labels[node];
        }
    }

    #[test]
    fn hybrid_beats_machine_oblivious_assignment() {
        // A machine-oblivious partitioner gives no guarantee about which
        // part ids land on which node; model that by permuting the part ids
        // of a flat partition. The two-level partition, whose numbering is
        // node-aligned by construction, must have a lower off-node share.
        let m = tet_box(10, 10, 10, 1.0, 1.0, 1.0);
        let nodes = 4;
        let cores = 4;
        let nparts = (nodes * cores) as PartId;
        let hybrid = two_level_partition(&m, nodes, cores);
        let flat = partition_mesh(&m, nodes * cores);
        let oblivious: Vec<PartId> = flat.iter().map(|&p| (p * 7 + 3) % nparts).collect();
        let sh = off_node_share(&m, &hybrid, cores, Dim::Vertex);
        let so = off_node_share(&m, &oblivious, cores, Dim::Vertex);
        assert!(
            sh < so - 0.05,
            "hybrid off-node share {sh:.3} should clearly beat oblivious {so:.3}"
        );
        // Most of the hybrid's boundary stays on-node.
        assert!(sh < 0.75, "hybrid off-node share too high: {sh:.3}");
    }

    #[test]
    fn degenerate_machine_shapes() {
        let m = tri_rect(6, 6, 1.0, 1.0);
        // 1 node × k cores == plain k-way partition.
        let labels = two_level_partition(&m, 1, 4);
        let mut loads = [0f64; 4];
        for e in m.iter(m.elem_dim_t()) {
            loads[labels[e.idx()] as usize] += 1.0;
        }
        assert!(loads.iter().all(|&l| l > 0.0));
        assert_eq!(off_node_share(&m, &labels, 4, Dim::Vertex), 0.0);
        // k nodes × 1 core == flat partition; all boundary is off-node.
        let labels = two_level_partition(&m, 4, 1);
        assert_eq!(off_node_share(&m, &labels, 1, Dim::Vertex), 1.0);
    }
}
