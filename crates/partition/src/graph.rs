//! The element dual graph.
//!
//! Graph/hypergraph partitioners (§III) view the mesh as a graph whose nodes
//! are elements and whose edges connect elements sharing a side
//! (dimension `D-1` entity). [`DualGraph`] builds that CSR structure from a
//! mesh using the O(1) adjacency queries — exactly the "one piece of the
//! mesh connectivity information" the paper says graph methods encode.

use pumi_mesh::Mesh;
use pumi_util::MeshEnt;

/// CSR dual graph over mesh elements.
#[derive(Debug, Clone)]
pub struct DualGraph {
    /// CSR row offsets, length `n + 1`.
    pub xadj: Vec<u32>,
    /// CSR column indices (neighbour graph-node ids).
    pub adjncy: Vec<u32>,
    /// Edge weights, parallel to `adjncy` (1 by default).
    pub adjwgt: Vec<f64>,
    /// Graph-node id → element handle. May be empty for synthetic graphs
    /// (e.g. the part graph built by [`crate::hier`]) that never map nodes
    /// back to mesh entities.
    pub elems: Vec<MeshEnt>,
    /// Node weights (element costs; 1 by default).
    pub vwgt: Vec<f64>,
}

impl DualGraph {
    /// Build the dual graph of `mesh` (side-adjacency).
    pub fn build(mesh: &Mesh) -> DualGraph {
        let d = mesh.elem_dim_t();
        let elems: Vec<MeshEnt> = mesh.iter(d).collect();
        // element handle index -> graph node id
        let mut node_of = vec![u32::MAX; mesh.index_space(d)];
        for (i, e) in elems.iter().enumerate() {
            node_of[e.idx()] = i as u32;
        }
        let mut xadj = Vec::with_capacity(elems.len() + 1);
        let mut adjncy = Vec::with_capacity(elems.len() * 4);
        xadj.push(0u32);
        for &e in &elems {
            for n in mesh.adjacent(e, d) {
                adjncy.push(node_of[n.idx()]);
            }
            xadj.push(adjncy.len() as u32);
        }
        let n = elems.len();
        let nedges = adjncy.len();
        DualGraph {
            xadj,
            adjncy,
            adjwgt: vec![1.0; nedges],
            elems,
            vwgt: vec![1.0; n],
        }
    }

    /// Number of graph nodes.
    pub fn len(&self) -> usize {
        self.xadj.len() - 1
    }

    /// Whether the graph is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Neighbours of node `u`.
    #[inline]
    pub fn neighbors(&self, u: u32) -> &[u32] {
        &self.adjncy[self.xadj[u as usize] as usize..self.xadj[u as usize + 1] as usize]
    }

    /// Neighbours of node `u` with their edge weights.
    #[inline]
    pub fn edges(&self, u: u32) -> impl Iterator<Item = (u32, f64)> + '_ {
        let s = self.xadj[u as usize] as usize;
        let e = self.xadj[u as usize + 1] as usize;
        self.adjncy[s..e]
            .iter()
            .copied()
            .zip(self.adjwgt[s..e].iter().copied())
    }

    /// Total node weight.
    pub fn total_weight(&self) -> f64 {
        self.vwgt.iter().sum()
    }

    /// The edge cut of a labeling: edges whose endpoints have different
    /// labels (each counted once).
    pub fn edge_cut(&self, labels: &[u32]) -> usize {
        let mut cut = 0;
        for u in 0..self.len() as u32 {
            for &v in self.neighbors(u) {
                if u < v && labels[u as usize] != labels[v as usize] {
                    cut += 1;
                }
            }
        }
        cut
    }

    /// The weighted edge cut of a labeling: sum of `adjwgt` over edges
    /// whose endpoints have different labels (each edge counted once, using
    /// the weight stored on its lower-endpoint direction).
    pub fn edge_cut_weighted(&self, labels: &[u32]) -> f64 {
        let mut cut = 0.0;
        for u in 0..self.len() as u32 {
            for (v, w) in self.edges(u) {
                if u < v && labels[u as usize] != labels[v as usize] {
                    cut += w;
                }
            }
        }
        cut
    }

    /// A peripheral node: run two BFS sweeps from `start` and return the
    /// farthest node found (pseudo-diameter endpoint) within the set of
    /// nodes where `active` is true.
    pub fn peripheral_node(&self, start: u32, active: &[bool]) -> u32 {
        let mut far = start;
        for _ in 0..2 {
            far = self.bfs_farthest(far, active);
        }
        far
    }

    fn bfs_farthest(&self, start: u32, active: &[bool]) -> u32 {
        let mut seen = vec![false; self.len()];
        let mut queue = std::collections::VecDeque::new();
        seen[start as usize] = true;
        queue.push_back(start);
        let mut last = start;
        while let Some(u) = queue.pop_front() {
            last = u;
            for &v in self.neighbors(u) {
                if active[v as usize] && !seen[v as usize] {
                    seen[v as usize] = true;
                    queue.push_back(v);
                }
            }
        }
        last
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pumi_meshgen::tri_rect;

    #[test]
    fn dual_graph_of_strip() {
        // 2x1 rect = 4 triangles; interior adjacency forms a path of length
        // depending on diagonals.
        let m = tri_rect(2, 1, 2.0, 1.0);
        let g = DualGraph::build(&m);
        assert_eq!(g.len(), 4);
        assert_eq!(g.xadj.len(), 5);
        // Symmetric adjacency.
        for u in 0..g.len() as u32 {
            for &v in g.neighbors(u) {
                assert!(g.neighbors(v).contains(&u), "asymmetric edge {u}-{v}");
            }
        }
        // Total degree = 2 * interior edges = 2 * 3.
        assert_eq!(g.adjncy.len(), 6);
    }

    #[test]
    fn edge_cut_counts_cross_edges() {
        let m = tri_rect(2, 2, 1.0, 1.0);
        let g = DualGraph::build(&m);
        let all_same = vec![0u32; g.len()];
        assert_eq!(g.edge_cut(&all_same), 0);
        let all_diff: Vec<u32> = (0..g.len() as u32).collect();
        // Every interior edge is cut.
        assert_eq!(g.edge_cut(&all_diff), g.adjncy.len() / 2);
    }

    #[test]
    fn peripheral_node_is_far() {
        let m = tri_rect(8, 1, 8.0, 1.0);
        let g = DualGraph::build(&m);
        let active = vec![true; g.len()];
        let p = g.peripheral_node(g.len() as u32 / 2, &active);
        // A strip's peripheral element is at one end: its centroid x is near
        // 0 or 8.
        let c = m.centroid(g.elems[p as usize]);
        assert!(c[0] < 1.0 || c[0] > 7.0, "peripheral at x={}", c[0]);
    }
}
