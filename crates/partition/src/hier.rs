//! Hierarchy-aware two-level partitioning against a [`MachineModel`].
//!
//! The CERFACS hardware-locality scheme (arXiv:2008.00832): partition the
//! part graph onto *nodes* first, minimizing the off-node edge cut, then
//! place each node's parts on its cores for core-level balance. Because the
//! node-level pass sees the boundary-copy weights between parts, the
//! expensive network surface is decided where there are few, large pieces;
//! the intra-node placement only shuffles parts across shared memory.
//!
//! Two entry points:
//! * [`partition_mesh_hier`] — serial: label a mesh's elements directly,
//!   node blocks first, then per-core splits nested inside them;
//! * [`partition_hier`] — distributed: take an already-distributed mesh,
//!   build the boundary-copy-weighted part graph collectively, and compute
//!   a part → node → rank placement ([`HierPartition`]) on every rank
//!   identically.
//!
//! On a flat machine ([`MachineModel::flat`], or a single node) there is no
//! hierarchy to exploit and both entry points fall back to the flat path:
//! [`crate::partition_mesh`] for the serial labeling, and the contiguous
//! part map ([`PartMap::contiguous`]) for the distributed placement.

use crate::graph::DualGraph;
use crate::local::split_labels;
use crate::multilevel::{partition_graph, GraphPartOpts};
use pumi_core::dist::{DistMesh, PartMap};
use pumi_mesh::Mesh;
use pumi_pcu::{Comm, MachineModel};
use pumi_util::PartId;

/// Options for the hierarchical partitioners.
#[derive(Debug, Clone, Copy, Default)]
pub struct HierOpts {
    /// Options for the node-level (and serial intra-node) graph partitioner.
    pub graph: GraphPartOpts,
}

/// A part → node → rank placement computed by [`partition_hier`].
#[derive(Debug, Clone)]
pub struct HierPartition {
    /// Node hosting each part.
    pub node_of_part: Vec<u32>,
    /// Rank hosting each part (consistent with `node_of_part` under the
    /// machine model used to compute it).
    pub rank_of_part: Vec<usize>,
    /// Boundary-copy weight crossing nodes under this placement.
    pub off_node_cut: f64,
    /// Total boundary-copy weight between distinct parts.
    pub total_cut: f64,
}

impl HierPartition {
    /// The placement as a [`PartMap`] usable with
    /// [`pumi_core::dist::distribute`].
    pub fn part_map(&self, nranks: usize) -> PartMap {
        PartMap::from_ranks(self.rank_of_part.clone(), nranks)
    }

    /// Fraction of boundary-copy weight that crosses nodes (0 when there is
    /// no boundary at all).
    pub fn off_node_fraction(&self) -> f64 {
        if self.total_cut == 0.0 {
            0.0
        } else {
            self.off_node_cut / self.total_cut
        }
    }
}

/// Serial hierarchical mesh partition: `nparts` element labels for a
/// machine, node blocks first (minimizing the node-level edge cut), then
/// `nparts / machine.nodes` parts nested inside each block. Parts are
/// numbered node-major, so part `p` belongs on node
/// `p / (nparts / machine.nodes)` — the numbering [`PartMap::contiguous`]
/// places correctly.
///
/// On a flat or single-node machine this is exactly
/// [`crate::partition_mesh`].
///
/// # Panics
/// Panics if `nparts` is not a positive multiple of `machine.nodes`.
pub fn partition_mesh_hier(
    mesh: &Mesh,
    nparts: usize,
    machine: &MachineModel,
    opts: HierOpts,
) -> Vec<PartId> {
    assert!(
        nparts >= machine.nodes && nparts.is_multiple_of(machine.nodes),
        "nparts {nparts} must be a positive multiple of nodes {}",
        machine.nodes
    );
    if machine.cores_per_node == 1 || machine.nodes == 1 {
        // No hierarchy to exploit: flat path.
        let g = DualGraph::build(mesh);
        let gl = partition_graph(&g, nparts, opts.graph);
        let mut labels = vec![0 as PartId; mesh.index_space(mesh.elem_dim_t())];
        for (node, &e) in g.elems.iter().enumerate() {
            labels[e.idx()] = gl[node];
        }
        return labels;
    }
    let g = DualGraph::build(mesh);
    let node_labels = partition_graph(&g, machine.nodes, opts.graph);
    let mut labels = vec![0 as PartId; mesh.index_space(mesh.elem_dim_t())];
    for (node, &e) in g.elems.iter().enumerate() {
        labels[e.idx()] = node_labels[node];
    }
    split_labels(mesh, &labels, machine.nodes, nparts / machine.nodes)
}

/// Distributed hierarchical placement: build the boundary-copy-weighted
/// part graph of `dm` collectively, partition it onto `machine.nodes` nodes
/// minimizing the off-node cut, then assign each node's parts to its cores
/// by longest-processing-time load balancing. Every rank computes the same
/// [`HierPartition`] (the part graph is allreduced), so the result can be
/// used directly to build a new [`PartMap`].
///
/// On a flat machine ([`MachineModel::flat`]) the placement is exactly
/// [`PartMap::contiguous`] — the existing flat path — so topology-blind
/// callers lose nothing. On a single-node machine the node level is
/// trivial and only the core-balance placement runs.
///
/// Collective: every rank must call it.
///
/// ```
/// use pumi_core::dist::{distribute, PartMap};
/// use pumi_meshgen::tri_rect;
/// use pumi_partition::hier::{partition_hier, HierOpts};
/// use pumi_partition::partition_mesh;
/// use pumi_pcu::{execute_on, MachineModel};
///
/// let machine = MachineModel::new(2, 2); // 2 nodes × 2 cores
/// execute_on(machine, |c| {
///     let m = tri_rect(8, 8, 1.0, 1.0);
///     let labels = partition_mesh(&m, 8);
///     let dm = distribute(c, PartMap::contiguous(8, c.nranks()), &m, &labels);
///     let h = partition_hier(c, &dm, &c.machine(), HierOpts::default());
///     assert_eq!(h.node_of_part.len(), 8);
///     assert!(h.off_node_cut <= h.total_cut);
///     let map = h.part_map(c.nranks());
///     assert_eq!(map.nparts(), 8);
/// });
/// ```
pub fn partition_hier(
    comm: &Comm,
    dm: &DistMesh,
    machine: &MachineModel,
    opts: HierOpts,
) -> HierPartition {
    let nparts = dm.map.nparts();
    let nranks = machine.nranks();
    // Local contributions: P×P boundary-copy counts, then P element loads.
    let mut flat = vec![0f64; nparts * nparts + nparts];
    for p in &dm.parts {
        flat[nparts * nparts + p.id as usize] += p.mesh.num_elems() as f64;
        for (e, remotes) in p.shared_entities() {
            if p.is_ghost(e) {
                continue;
            }
            for &(q, _) in remotes {
                flat[p.id as usize * nparts + q as usize] += 1.0;
            }
        }
    }
    let flat = comm.allreduce_sum_f64_vec(&flat);
    let (wmat, loads) = flat.split_at(nparts * nparts);

    let fallback = || -> Vec<u32> {
        let map = PartMap::contiguous(nparts, nranks);
        (0..nparts)
            .map(|p| machine.node_of(map.rank_of(p as PartId)) as u32)
            .collect()
    };

    let node_of_part: Vec<u32> = if machine.cores_per_node == 1 || machine.nodes == 1 {
        fallback()
    } else {
        // Symmetrized part graph in CSR form; vertex weight = element load.
        let mut xadj = vec![0u32];
        let mut adjncy = Vec::new();
        let mut adjwgt = Vec::new();
        for p in 0..nparts {
            for q in 0..nparts {
                if q == p {
                    continue;
                }
                let w = wmat[p * nparts + q] + wmat[q * nparts + p];
                if w > 0.0 {
                    adjncy.push(q as u32);
                    adjwgt.push(0.5 * w);
                }
            }
            xadj.push(adjncy.len() as u32);
        }
        let pg = DualGraph {
            xadj,
            adjncy,
            adjwgt,
            elems: Vec::new(),
            vwgt: loads.to_vec(),
        };
        let labels = partition_graph(&pg, machine.nodes, opts.graph);
        // Every node must receive at least one part; if the coarse part
        // graph is too lumpy for that, a contiguous placement is safer.
        let mut populated = vec![false; machine.nodes];
        for &l in &labels {
            populated[l as usize] = true;
        }
        if populated.iter().all(|&b| b) {
            labels
        } else {
            fallback()
        }
    };

    // Intra-node placement: longest-processing-time onto the node's cores.
    let mut rank_of_part = vec![0usize; nparts];
    for node in 0..machine.nodes {
        let mut parts: Vec<usize> = (0..nparts)
            .filter(|&p| node_of_part[p] == node as u32)
            .collect();
        parts.sort_by(|&a, &b| loads[b].partial_cmp(&loads[a]).unwrap().then(a.cmp(&b)));
        let ranks = machine.ranks_on_node(node);
        let base = ranks.start;
        let mut acc = vec![0f64; ranks.len()];
        for p in parts {
            let (core, _) = acc
                .iter()
                .enumerate()
                .min_by(|&(_, a), &(_, b)| a.partial_cmp(b).unwrap())
                .unwrap();
            acc[core] += loads[p];
            rank_of_part[p] = base + core;
        }
    }

    // Cut accounting under the chosen node assignment.
    let mut off_node_cut = 0.0;
    let mut total_cut = 0.0;
    for p in 0..nparts {
        for q in (p + 1)..nparts {
            let w = wmat[p * nparts + q] + wmat[q * nparts + p];
            if w > 0.0 {
                total_cut += 0.5 * w;
                if node_of_part[p] != node_of_part[q] {
                    off_node_cut += 0.5 * w;
                }
            }
        }
    }

    HierPartition {
        node_of_part,
        rank_of_part,
        off_node_cut,
        total_cut,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition_mesh;
    use crate::twolevel::off_node_share;
    use pumi_core::dist::distribute;
    use pumi_meshgen::{tet_box, tri_rect};
    use pumi_util::stats::imbalance;
    use pumi_util::Dim;

    #[test]
    fn serial_hier_matches_flat_on_flat_machine() {
        let m = tri_rect(12, 12, 1.0, 1.0);
        let flat = partition_mesh(&m, 8);
        let hier = partition_mesh_hier(&m, 8, &MachineModel::flat(8), HierOpts::default());
        assert_eq!(flat, hier);
        let hier1 = partition_mesh_hier(&m, 8, &MachineModel::new(1, 8), HierOpts::default());
        assert_eq!(flat, hier1);
    }

    #[test]
    fn serial_hier_balances_and_reduces_off_node_share() {
        let m = tet_box(10, 10, 10, 1.0, 1.0, 1.0);
        let machine = MachineModel::new(4, 4);
        let labels = partition_mesh_hier(&m, 16, &machine, HierOpts::default());
        let mut loads = vec![0f64; 16];
        for e in m.iter(m.elem_dim_t()) {
            loads[labels[e.idx()] as usize] += 1.0;
        }
        assert!(loads.iter().all(|&l| l > 0.0), "{loads:?}");
        assert!(imbalance(&loads) < 1.15, "{loads:?}");
        // Node-major numbering keeps most boundary on-node.
        let sh = off_node_share(&m, &labels, 4, Dim::Vertex);
        assert!(sh < 0.75, "off-node share {sh:.3}");
    }

    #[test]
    fn distributed_hier_flat_machine_is_contiguous() {
        pumi_pcu::execute(4, |c| {
            let m = tri_rect(8, 8, 1.0, 1.0);
            let labels = partition_mesh(&m, 8);
            let dm = distribute(c, PartMap::contiguous(8, c.nranks()), &m, &labels);
            let h = partition_hier(c, &dm, &c.machine(), HierOpts::default());
            let map = h.part_map(c.nranks());
            let want = PartMap::contiguous(8, c.nranks());
            for p in 0..8 {
                assert_eq!(map.rank_of(p), want.rank_of(p));
            }
        });
    }

    #[test]
    fn distributed_hier_places_every_part_on_its_node() {
        let machine = MachineModel::new(2, 2);
        pumi_pcu::execute_on(machine, |c| {
            let m = tri_rect(10, 10, 1.0, 1.0);
            let labels = partition_mesh(&m, 8);
            let dm = distribute(c, PartMap::contiguous(8, c.nranks()), &m, &labels);
            let machine = c.machine();
            let h = partition_hier(c, &dm, &machine, HierOpts::default());
            for p in 0..8 {
                assert_eq!(
                    machine.node_of(h.rank_of_part[p]) as u32,
                    h.node_of_part[p],
                    "part {p} rank/node mismatch"
                );
            }
            assert!(h.total_cut > 0.0);
            assert!(h.off_node_cut <= h.total_cut);
            // Both nodes host parts.
            let mut nodes: Vec<u32> = h.node_of_part.clone();
            nodes.sort_unstable();
            nodes.dedup();
            assert_eq!(nodes.len(), 2);
        });
    }

    #[test]
    fn distributed_hier_beats_scrambled_placement() {
        // The hierarchical placement's off-node cut must not exceed the cut
        // of an adversarial (reversed-contiguous) placement of the same
        // parts.
        let machine = MachineModel::new(2, 4);
        pumi_pcu::execute_on(machine, |c| {
            let m = tet_box(8, 8, 8, 1.0, 1.0, 1.0);
            let labels = partition_mesh(&m, 16);
            let dm = distribute(c, PartMap::contiguous(16, c.nranks()), &m, &labels);
            let machine = c.machine();
            let h = partition_hier(c, &dm, &machine, HierOpts::default());
            // Scrambled: part p on node (p % 2) — interleaved, worst case.
            let mut scrambled = 0.0;
            let mut total = 0.0;
            // Recompute the cut matrix the same way partition_hier does.
            let nparts = 16usize;
            let mut flat = vec![0f64; nparts * nparts];
            for p in &dm.parts {
                for (e, remotes) in p.shared_entities() {
                    if p.is_ghost(e) {
                        continue;
                    }
                    for &(q, _) in remotes {
                        flat[p.id as usize * nparts + q as usize] += 1.0;
                    }
                }
            }
            let flat = c.allreduce_sum_f64_vec(&flat);
            for p in 0..nparts {
                for q in (p + 1)..nparts {
                    let w = 0.5 * (flat[p * nparts + q] + flat[q * nparts + p]);
                    total += w;
                    if p % 2 != q % 2 {
                        scrambled += w;
                    }
                }
            }
            assert!(total > 0.0);
            assert!(
                h.off_node_cut <= scrambled,
                "hier cut {} vs scrambled {}",
                h.off_node_cut,
                scrambled
            );
        });
    }
}
