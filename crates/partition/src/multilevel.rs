//! The graph partitioner standing in for Zoltan PHG (§III, test T0).
//!
//! Recursive bisection: each split grows one half greedily from a peripheral
//! node (Farhat-style greedy graph growing), then runs
//! Fiduccia–Mattheyses-flavoured boundary refinement passes to reduce the
//! edge cut under a balance constraint. This reproduces the properties the
//! paper's experiments need from PHG: element counts balanced to ~a few
//! percent, contiguous-ish parts, decent boundaries — and, crucially, no
//! control over vertex/edge balance, which is what leaves the ~20% vertex
//! imbalance spikes that ParMA then removes.

use crate::graph::DualGraph;
use pumi_util::PartId;

/// Options for [`partition_graph`].
#[derive(Debug, Clone, Copy)]
pub struct GraphPartOpts {
    /// FM refinement passes per bisection.
    pub refine_passes: usize,
    /// Allowed element-count imbalance per bisection (e.g. 0.02 = 2%).
    pub balance_tol: f64,
}

impl Default for GraphPartOpts {
    fn default() -> Self {
        GraphPartOpts {
            refine_passes: 4,
            balance_tol: 0.01,
        }
    }
}

/// Partition the dual graph into `nparts` labels `0..nparts`.
pub fn partition_graph(g: &DualGraph, nparts: usize, opts: GraphPartOpts) -> Vec<PartId> {
    assert!(nparts >= 1);
    let mut labels = vec![0 as PartId; g.len()];
    if nparts == 1 || g.is_empty() {
        return labels;
    }
    let nodes: Vec<u32> = (0..g.len() as u32).collect();
    recurse(g, &nodes, 0, nparts, &mut labels, &opts);
    labels
}

fn recurse(
    g: &DualGraph,
    nodes: &[u32],
    base: usize,
    nparts: usize,
    labels: &mut [PartId],
    opts: &GraphPartOpts,
) {
    if nparts == 1 {
        for &u in nodes {
            labels[u as usize] = base as PartId;
        }
        return;
    }
    let k1 = nparts / 2;
    let k2 = nparts - k1;
    let frac = k1 as f64 / nparts as f64;
    let (left, right) = bisect(g, nodes, frac, opts);
    recurse(g, &left, base, k1, labels, opts);
    recurse(g, &right, base + k1, k2, labels, opts);
}

/// Connected components of the node subset, heaviest first.
fn components(g: &DualGraph, nodes: &[u32]) -> Vec<(f64, Vec<u32>)> {
    let mut active = vec![false; g.len()];
    for &u in nodes {
        active[u as usize] = true;
    }
    let mut seen = vec![false; g.len()];
    let mut out: Vec<(f64, Vec<u32>)> = Vec::new();
    for &start in nodes {
        if seen[start as usize] {
            continue;
        }
        seen[start as usize] = true;
        let mut members = vec![start];
        let mut weight = 0.0;
        let mut stack = vec![start];
        while let Some(u) = stack.pop() {
            weight += g.vwgt[u as usize];
            for &v in g.neighbors(u) {
                if active[v as usize] && !seen[v as usize] {
                    seen[v as usize] = true;
                    members.push(v);
                    stack.push(v);
                }
            }
        }
        out.push((weight, members));
    }
    out.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
    out
}

/// Split `nodes` into two sets with weight fraction ~`frac` on the left.
///
/// Disconnected subsets are handled by whole-component bin packing — only
/// the single component that straddles the target weight is actually cut.
/// This keeps every produced part a union of few whole components rather
/// than scattering nodes (which fragments parts and inflates their
/// boundary-entity counts).
fn bisect(g: &DualGraph, nodes: &[u32], frac: f64, opts: &GraphPartOpts) -> (Vec<u32>, Vec<u32>) {
    let total: f64 = nodes.iter().map(|&u| g.vwgt[u as usize]).sum();
    let target = total * frac;
    let comps = components(g, nodes);
    if comps.len() == 1 {
        return bisect_connected(g, nodes, target, opts);
    }
    let mut left: Vec<u32> = Vec::new();
    let mut right: Vec<u32> = Vec::new();
    let mut lw = 0.0;
    let mut split_done = false;
    for (w, members) in comps {
        if !split_done && lw + w <= target + 0.5 {
            lw += w;
            left.extend(members);
        } else if !split_done && lw < target {
            // This component straddles the target: cut it.
            let (l2, r2) = bisect_connected(g, &members, target - lw, opts);
            left.extend(l2);
            right.extend(r2);
            split_done = true;
        } else {
            right.extend(members);
        }
    }
    (left, right)
}

/// Bisect a *connected* node set, putting ~`target` weight on the left.
fn bisect_connected(
    g: &DualGraph,
    nodes: &[u32],
    target: f64,
    opts: &GraphPartOpts,
) -> (Vec<u32>, Vec<u32>) {
    let mut active = vec![false; g.len()];
    for &u in nodes {
        active[u as usize] = true;
    }
    // Greedy growth from a peripheral node, preferring nodes with the most
    // already-grown neighbours (minimizes frontier).
    let seed = g.peripheral_node(nodes[0], &active);
    let mut side = vec![false; g.len()]; // true = left
    let mut gain = vec![0f64; g.len()];
    let mut in_frontier = vec![false; g.len()];
    let mut frontier: Vec<u32> = vec![seed];
    in_frontier[seed as usize] = true;
    let mut grown = 0.0;
    while grown < target && !frontier.is_empty() {
        // Pick the frontier node with max grown-neighbour edge weight.
        let (pos, &u) = frontier
            .iter()
            .enumerate()
            .max_by(|&(_, &a), &(_, &b)| gain[a as usize].partial_cmp(&gain[b as usize]).unwrap())
            .unwrap();
        frontier.swap_remove(pos);
        if side[u as usize] {
            continue;
        }
        side[u as usize] = true;
        grown += g.vwgt[u as usize];
        for (v, w) in g.edges(u) {
            if active[v as usize] && !side[v as usize] {
                gain[v as usize] += w;
                if !in_frontier[v as usize] {
                    in_frontier[v as usize] = true;
                    frontier.push(v);
                }
            }
        }
    }

    // Refinement rounds: absorb enclaves (fragments of one side enclosed by
    // the other — the root cause of fragmented, vertex-heavy parts), restore
    // the balance window, then FM boundary passes for the cut.
    let lo = target * (1.0 - opts.balance_tol) - 1.0;
    let hi = target * (1.0 + opts.balance_tol) + 1.0;
    for _ in 0..2 {
        grown = flip_enclaves(g, nodes, &active, &mut side);
        rebalance(g, nodes, &active, &mut side, &mut grown, lo, hi);
        for _ in 0..opts.refine_passes {
            let mut moved = 0usize;
            for &u in nodes {
                let us = side[u as usize];
                let mut same = 0f64;
                let mut other = 0f64;
                for (v, w) in g.edges(u) {
                    if !active[v as usize] {
                        continue;
                    }
                    if side[v as usize] == us {
                        same += w;
                    } else {
                        other += w;
                    }
                }
                if other <= same {
                    continue; // no cut gain
                }
                let w = g.vwgt[u as usize];
                let new_grown = if us { grown - w } else { grown + w };
                if new_grown < lo || new_grown > hi {
                    continue; // would break balance
                }
                side[u as usize] = !us;
                grown = new_grown;
                moved += 1;
            }
            if moved == 0 {
                break;
            }
        }
    }

    let mut left = Vec::with_capacity(target as usize + 1);
    let mut right = Vec::with_capacity(nodes.len());
    for &u in nodes {
        if side[u as usize] {
            left.push(u);
        } else {
            right.push(u);
        }
    }
    (left, right)
}

/// Flip every non-principal connected component of each side to the other
/// side (an enclave of left inside right becomes right, and vice versa).
/// Returns the left weight afterwards.
fn flip_enclaves(g: &DualGraph, nodes: &[u32], active: &[bool], side: &mut [bool]) -> f64 {
    // Component labelling restricted to `nodes`, separately per side.
    let mut comp: Vec<u32> = vec![u32::MAX; g.len()];
    let mut comps: Vec<(bool, f64, Vec<u32>)> = Vec::new(); // (side, weight, members)
    for &start in nodes {
        if comp[start as usize] != u32::MAX {
            continue;
        }
        let s = side[start as usize];
        let id = comps.len() as u32;
        comp[start as usize] = id;
        let mut members = vec![start];
        let mut weight = 0.0;
        let mut stack = vec![start];
        while let Some(u) = stack.pop() {
            weight += g.vwgt[u as usize];
            for &v in g.neighbors(u) {
                if active[v as usize] && comp[v as usize] == u32::MAX && side[v as usize] == s {
                    comp[v as usize] = id;
                    members.push(v);
                    stack.push(v);
                }
            }
        }
        comps.push((s, weight, members));
    }
    // Principal component per side = heaviest.
    let mut main = [usize::MAX; 2];
    for (i, (s, w, _)) in comps.iter().enumerate() {
        let si = *s as usize;
        if main[si] == usize::MAX || *w > comps[main[si]].1 {
            main[si] = i;
        }
    }
    for (i, (s, _, members)) in comps.iter().enumerate() {
        if i == main[*s as usize] {
            continue;
        }
        for &u in members {
            side[u as usize] = !s;
        }
    }
    nodes
        .iter()
        .filter(|&&u| side[u as usize])
        .map(|&u| g.vwgt[u as usize])
        .sum()
}

/// Move boundary nodes across the cut (least cut damage first) until the
/// left weight is inside `[lo, hi]`.
fn rebalance(
    g: &DualGraph,
    nodes: &[u32],
    active: &[bool],
    side: &mut [bool],
    grown: &mut f64,
    lo: f64,
    hi: f64,
) {
    let mut guard = nodes.len() * 2;
    while (*grown > hi || *grown < lo) && guard > 0 {
        let from_left = *grown > hi;
        // Best boundary node on the overweight side: max (other - same).
        let mut best: Option<(f64, u32)> = None;
        for &u in nodes {
            if side[u as usize] != from_left {
                continue;
            }
            let mut same = 0f64;
            let mut other = 0f64;
            let mut touches_other = false;
            for (v, w) in g.edges(u) {
                if !active[v as usize] {
                    continue;
                }
                if side[v as usize] == side[u as usize] {
                    same += w;
                } else {
                    other += w;
                    touches_other = true;
                }
            }
            if !touches_other {
                continue;
            }
            let gain = other - same;
            if best.is_none_or(|(bg, _)| gain > bg) {
                best = Some((gain, u));
            }
        }
        let Some((_, u)) = best else { break };
        let w = g.vwgt[u as usize];
        side[u as usize] = !side[u as usize];
        *grown += if from_left { -w } else { w };
        guard -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::DualGraph;
    use pumi_meshgen::{tet_box, tri_rect};
    use pumi_util::stats::imbalance;

    fn label_loads(labels: &[PartId], nparts: usize) -> Vec<f64> {
        let mut loads = vec![0f64; nparts];
        for &l in labels {
            loads[l as usize] += 1.0;
        }
        loads
    }

    #[test]
    fn bisection_balances_elements() {
        let m = tri_rect(16, 16, 1.0, 1.0);
        let g = DualGraph::build(&m);
        let labels = partition_graph(&g, 2, GraphPartOpts::default());
        let loads = label_loads(&labels, 2);
        assert!(imbalance(&loads) < 1.05, "imbalance {:?}", loads);
        // The cut of a good bisection of a 16x16 grid is near the grid width.
        let cut = g.edge_cut(&labels);
        assert!(cut < 80, "cut too large: {cut}");
    }

    #[test]
    fn k_way_partition_balances() {
        let m = tri_rect(20, 20, 1.0, 1.0);
        let g = DualGraph::build(&m);
        for k in [3usize, 4, 7, 8] {
            let labels = partition_graph(&g, k, GraphPartOpts::default());
            let loads = label_loads(&labels, k);
            assert!(
                imbalance(&loads) < 1.10,
                "k={k}: element imbalance {:?}",
                loads
            );
            assert!(loads.iter().all(|&l| l > 0.0), "k={k}: empty part");
        }
    }

    #[test]
    fn three_d_partition() {
        let m = tet_box(6, 6, 6, 1.0, 1.0, 1.0);
        let g = DualGraph::build(&m);
        let labels = partition_graph(&g, 8, GraphPartOpts::default());
        let loads = label_loads(&labels, 8);
        assert!(imbalance(&loads) < 1.10, "{loads:?}");
        // Parts should be mostly contiguous: the cut stays well below the
        // total edges.
        let cut = g.edge_cut(&labels);
        assert!(cut * 4 < g.adjncy.len() / 2, "cut {cut} too large");
    }

    #[test]
    fn single_part_is_identity() {
        let m = tri_rect(4, 4, 1.0, 1.0);
        let g = DualGraph::build(&m);
        let labels = partition_graph(&g, 1, GraphPartOpts::default());
        assert!(labels.iter().all(|&l| l == 0));
    }
}
