//! Local partitioning (§III-A, the Mira experiment).
//!
//! "This partition is created by locally partitioning each part of a 16,384
//! part mesh with Zoltan Hypergraph to 96 parts." Each part is split
//! independently — the splitter sees only that part's subgraph — which is
//! what lets the per-part entity imbalance blow up (9% → 54% peak vertex
//! imbalance in the paper; the `mira_local_split` bench reproduces the
//! shape).

use crate::graph::DualGraph;
use crate::multilevel::{partition_graph, GraphPartOpts};
use pumi_mesh::Mesh;
use pumi_util::PartId;

/// Split every part of `labels` into `k` subparts using the graph method on
/// each part's induced subgraph. Part `p` becomes parts `p*k .. p*k+k`.
/// Returns the refined labels (over `nparts_old * k` parts).
pub fn split_labels(mesh: &Mesh, labels: &[PartId], nparts_old: usize, k: usize) -> Vec<PartId> {
    assert!(k >= 1);
    if k == 1 {
        return labels.to_vec();
    }
    let g = DualGraph::build(mesh);
    let mut out = vec![0 as PartId; labels.len()];
    // Collect the graph nodes of each old part.
    let mut groups: Vec<Vec<u32>> = vec![Vec::new(); nparts_old];
    for (node, &e) in g.elems.iter().enumerate() {
        groups[labels[e.idx()] as usize].push(node as u32);
    }
    for (p, group) in groups.iter().enumerate() {
        if group.is_empty() {
            continue;
        }
        // Build the induced subgraph.
        let mut local_of = vec![u32::MAX; g.len()];
        for (li, &u) in group.iter().enumerate() {
            local_of[u as usize] = li as u32;
        }
        let mut xadj = vec![0u32];
        let mut adjncy = Vec::new();
        for &u in group {
            for &v in g.neighbors(u) {
                if local_of[v as usize] != u32::MAX {
                    adjncy.push(local_of[v as usize]);
                }
            }
            xadj.push(adjncy.len() as u32);
        }
        let nedges = adjncy.len();
        let sub = DualGraph {
            xadj,
            adjncy,
            adjwgt: vec![1.0; nedges],
            elems: group.iter().map(|&u| g.elems[u as usize]).collect(),
            vwgt: vec![1.0; group.len()],
        };
        let sub_labels = partition_graph(&sub, k, GraphPartOpts::default());
        for (li, &u) in group.iter().enumerate() {
            out[g.elems[u as usize].idx()] = (p * k) as PartId + sub_labels[li];
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multilevel::{partition_graph, GraphPartOpts};
    use pumi_meshgen::tri_rect;
    use pumi_util::stats::imbalance;

    #[test]
    fn split_preserves_element_count_and_nesting() {
        let m = tri_rect(12, 12, 1.0, 1.0);
        let g = DualGraph::build(&m);
        let coarse = partition_graph(&g, 4, GraphPartOpts::default());
        let mut labels = vec![0 as PartId; m.index_space(m.elem_dim_t())];
        for (node, &e) in g.elems.iter().enumerate() {
            labels[e.idx()] = coarse[node];
        }
        let fine = split_labels(&m, &labels, 4, 3);
        // Nesting: fine label / 3 == coarse label.
        for e in m.iter(m.elem_dim_t()) {
            assert_eq!(fine[e.idx()] / 3, labels[e.idx()]);
        }
        // All 12 fine parts populated.
        let mut loads = vec![0f64; 12];
        for e in m.iter(m.elem_dim_t()) {
            loads[fine[e.idx()] as usize] += 1.0;
        }
        assert!(loads.iter().all(|&l| l > 0.0), "{loads:?}");
        // Element balance within each group stays decent.
        assert!(imbalance(&loads) < 1.15, "{loads:?}");
    }

    #[test]
    fn k_equals_one_is_identity() {
        let m = tri_rect(4, 4, 1.0, 1.0);
        let labels = vec![0 as PartId; m.index_space(m.elem_dim_t())];
        let out = split_labels(&m, &labels, 1, 1);
        assert_eq!(out, labels);
    }
}
