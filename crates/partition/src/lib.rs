//! Baseline partitioners (§III) — the stand-ins for Zoltan.
//!
//! "The most powerful parallel unstructured mesh partitioning procedures are
//! the graph and hypergraph-based methods... Faster partition computation is
//! available through geometric methods." This crate provides both families
//! plus the *local partitioning* flow of the Mira experiment:
//!
//! * [`graph`] — the element dual graph (CSR) built from mesh adjacencies,
//! * [`multilevel`] — recursive greedy-growing + FM-refined graph
//!   partitioner (the T0 baseline; see DESIGN.md for why this reproduces
//!   the PHG-relevant behaviour),
//! * [`rcb()`] — recursive coordinate bisection and recursive inertial
//!   bisection (geometric methods),
//! * [`local`] — split every part independently into k subparts
//!   (§III-A: 16,384 × 96 → 1.5M parts on Mira),
//! * [`twolevel`] — the hybrid node-then-core partitioner of §II-D,
//! * [`hier`] — hierarchy-aware two-level partitioning against a
//!   `MachineModel` (node-level cut minimization, then core placement),
//! * [`quality`] — Table II's statistics: per-dimension means, imbalance
//!   percentages, boundary-copy totals, edge cut.

#![warn(missing_docs)]

pub mod graph;
pub mod hier;
pub mod local;
pub mod multilevel;
pub mod quality;
pub mod rcb;
pub mod twolevel;

pub use graph::DualGraph;
pub use hier::{partition_hier, partition_mesh_hier, HierOpts, HierPartition};
pub use local::split_labels;
pub use multilevel::{partition_graph, GraphPartOpts};
pub use quality::PartitionQuality;
pub use rcb::{rcb, rib};
pub use twolevel::{off_node_share, two_level_partition};

use pumi_mesh::Mesh;
use pumi_util::PartId;

/// Convenience: run the graph partitioner on a mesh and return per-element
/// labels indexed by element handle index (the format `pumi_core::distribute`
/// consumes).
pub fn partition_mesh(mesh: &Mesh, nparts: usize) -> Vec<PartId> {
    partition_mesh_weighted(mesh, nparts, |_| 1.0)
}

/// [`partition_mesh`] with per-element weights — the vehicle for
/// *predictive load balancing* (§III-B): weighting each element by its
/// estimated post-adaptation element count balances the partition for the
/// mesh that adaptation is about to create, preventing the Fig 13 spike.
pub fn partition_mesh_weighted(
    mesh: &Mesh,
    nparts: usize,
    weight: impl Fn(pumi_util::MeshEnt) -> f64,
) -> Vec<PartId> {
    let mut g = DualGraph::build(mesh);
    for (node, &e) in g.elems.iter().enumerate() {
        g.vwgt[node] = weight(e);
    }
    let gl = partition_graph(&g, nparts, GraphPartOpts::default());
    let mut labels = vec![0 as PartId; mesh.index_space(mesh.elem_dim_t())];
    for (node, &e) in g.elems.iter().enumerate() {
        labels[e.idx()] = gl[node];
    }
    labels
}
