//! Geometric partitioners (§III): recursive coordinate bisection (RCB) and
//! recursive inertial bisection (RIB).
//!
//! "Faster partition computation is available through geometric methods...
//! However, as they do not account for mesh connectivity information, the
//! quality of partition boundaries can be poor." Both are provided so the
//! benches can show exactly that trade-off against the graph method.

use pumi_mesh::Mesh;
use pumi_util::{MeshEnt, PartId};

/// Recursive coordinate bisection of mesh elements into `nparts` by element
/// centroid, always splitting the longest axis at the weighted median.
pub fn rcb(mesh: &Mesh, nparts: usize) -> Vec<PartId> {
    let d = mesh.elem_dim_t();
    let elems: Vec<MeshEnt> = mesh.iter(d).collect();
    let pts: Vec<[f64; 3]> = elems.iter().map(|&e| mesh.centroid(e)).collect();
    let mut labels = vec![0 as PartId; mesh.index_space(d)];
    let idx: Vec<u32> = (0..elems.len() as u32).collect();
    rcb_recurse(&pts, &idx, 0, nparts, &mut |i, l| {
        labels[elems[i as usize].idx()] = l;
    });
    labels
}

fn rcb_recurse(
    pts: &[[f64; 3]],
    idx: &[u32],
    base: usize,
    nparts: usize,
    assign: &mut impl FnMut(u32, PartId),
) {
    if nparts == 1 {
        for &i in idx {
            assign(i, base as PartId);
        }
        return;
    }
    let k1 = nparts / 2;
    let k2 = nparts - k1;
    // Longest axis of the bounding box.
    let mut lo = [f64::MAX; 3];
    let mut hi = [f64::MIN; 3];
    for &i in idx {
        for a in 0..3 {
            lo[a] = lo[a].min(pts[i as usize][a]);
            hi[a] = hi[a].max(pts[i as usize][a]);
        }
    }
    let axis = (0..3)
        .max_by(|&a, &b| (hi[a] - lo[a]).partial_cmp(&(hi[b] - lo[b])).unwrap())
        .unwrap();
    // Split at the k1/nparts quantile.
    let mut order: Vec<u32> = idx.to_vec();
    order.sort_by(|&a, &b| {
        pts[a as usize][axis]
            .partial_cmp(&pts[b as usize][axis])
            .unwrap()
            .then(a.cmp(&b))
    });
    let split = order.len() * k1 / nparts;
    rcb_recurse(pts, &order[..split], base, k1, assign);
    rcb_recurse(pts, &order[split..], base + k1, k2, assign);
}

/// Recursive inertial bisection: like RCB but splits along the principal
/// inertial axis (dominant eigenvector of the centroid covariance, found by
/// power iteration), which adapts to domains not aligned with the axes.
pub fn rib(mesh: &Mesh, nparts: usize) -> Vec<PartId> {
    let d = mesh.elem_dim_t();
    let elems: Vec<MeshEnt> = mesh.iter(d).collect();
    let pts: Vec<[f64; 3]> = elems.iter().map(|&e| mesh.centroid(e)).collect();
    let mut labels = vec![0 as PartId; mesh.index_space(d)];
    let idx: Vec<u32> = (0..elems.len() as u32).collect();
    rib_recurse(&pts, &idx, 0, nparts, &mut |i, l| {
        labels[elems[i as usize].idx()] = l;
    });
    labels
}

fn principal_axis(pts: &[[f64; 3]], idx: &[u32]) -> [f64; 3] {
    let n = idx.len() as f64;
    let mut mean = [0.0; 3];
    for &i in idx {
        for a in 0..3 {
            mean[a] += pts[i as usize][a];
        }
    }
    for m in &mut mean {
        *m /= n;
    }
    // Covariance.
    let mut c = [[0.0f64; 3]; 3];
    for &i in idx {
        let p = pts[i as usize];
        let d = [p[0] - mean[0], p[1] - mean[1], p[2] - mean[2]];
        for a in 0..3 {
            for b in 0..3 {
                c[a][b] += d[a] * d[b];
            }
        }
    }
    // Power iteration.
    let mut v = [1.0f64, 0.7, 0.4];
    for _ in 0..32 {
        let mut w = [0.0; 3];
        for a in 0..3 {
            for b in 0..3 {
                w[a] += c[a][b] * v[b];
            }
        }
        let norm = (w[0] * w[0] + w[1] * w[1] + w[2] * w[2]).sqrt();
        if norm < 1e-30 {
            return [1.0, 0.0, 0.0];
        }
        v = [w[0] / norm, w[1] / norm, w[2] / norm];
    }
    v
}

fn rib_recurse(
    pts: &[[f64; 3]],
    idx: &[u32],
    base: usize,
    nparts: usize,
    assign: &mut impl FnMut(u32, PartId),
) {
    if nparts == 1 {
        for &i in idx {
            assign(i, base as PartId);
        }
        return;
    }
    let k1 = nparts / 2;
    let k2 = nparts - k1;
    let axis = principal_axis(pts, idx);
    let key = |i: u32| {
        let p = pts[i as usize];
        p[0] * axis[0] + p[1] * axis[1] + p[2] * axis[2]
    };
    let mut order: Vec<u32> = idx.to_vec();
    order.sort_by(|&a, &b| key(a).partial_cmp(&key(b)).unwrap().then(a.cmp(&b)));
    let split = order.len() * k1 / nparts;
    rib_recurse(pts, &order[..split], base, k1, assign);
    rib_recurse(pts, &order[split..], base + k1, k2, assign);
}

#[cfg(test)]
mod tests {
    use super::*;
    use pumi_meshgen::{tet_box, tri_rect};
    use pumi_util::stats::imbalance;
    use pumi_util::Dim;

    fn loads(mesh: &Mesh, labels: &[PartId], k: usize) -> Vec<f64> {
        let mut v = vec![0f64; k];
        for e in mesh.iter(mesh.elem_dim_t()) {
            v[labels[e.idx()] as usize] += 1.0;
        }
        v
    }

    #[test]
    fn rcb_balances_exactly_for_powers_of_two() {
        let m = tri_rect(8, 8, 1.0, 1.0);
        let labels = rcb(&m, 4);
        let l = loads(&m, &labels, 4);
        assert!(imbalance(&l) < 1.001, "{l:?}");
    }

    #[test]
    fn rcb_odd_part_counts() {
        let m = tri_rect(9, 9, 1.0, 1.0);
        let labels = rcb(&m, 5);
        let l = loads(&m, &labels, 5);
        assert!(imbalance(&l) < 1.05, "{l:?}");
        assert!(l.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn rcb_splits_longest_axis_first() {
        // A long strip: the first split must be in x, so parts 0/1 separate
        // at x ~ mid.
        let m = tri_rect(16, 1, 16.0, 1.0);
        let labels = rcb(&m, 2);
        let d = m.elem_dim_t();
        for e in m.iter(d) {
            let x = m.centroid(e)[0];
            if x < 7.5 {
                assert_eq!(labels[e.idx()], 0);
            }
            if x > 8.5 {
                assert_eq!(labels[e.idx()], 1);
            }
        }
    }

    #[test]
    fn rib_balances_3d() {
        let m = tet_box(5, 5, 5, 1.0, 2.0, 0.5);
        let labels = rib(&m, 6);
        let l = loads(&m, &labels, 6);
        assert!(imbalance(&l) < 1.05, "{l:?}");
    }

    #[test]
    fn rib_principal_axis_of_elongated_cloud() {
        // Points along the y axis → principal axis ≈ ±y.
        let pts: Vec<[f64; 3]> = (0..100)
            .map(|i| [0.01 * (i % 3) as f64, i as f64, 0.02 * (i % 5) as f64])
            .collect();
        let idx: Vec<u32> = (0..100).collect();
        let a = principal_axis(&pts, &idx);
        assert!(a[1].abs() > 0.99, "principal axis {a:?}");
    }

    #[test]
    fn geometric_methods_cover_all_parts() {
        let m = tet_box(4, 4, 4, 1.0, 1.0, 1.0);
        for k in [2usize, 3, 7] {
            for labels in [rcb(&m, k), rib(&m, k)] {
                let l = loads(&m, &labels, k);
                assert!(l.iter().all(|&x| x > 0.0), "empty part at k={k}");
                let _ = m.iter(Dim::Region); // silence unused-dim lint paths
            }
        }
    }
}
