//! Partition quality statistics over a serial mesh + element labels.
//!
//! These compute exactly the quantities of Table II: per-part mean counts
//! and imbalance percentages for every entity dimension, counting an entity
//! on every part whose elements touch it (i.e. including part-boundary
//! copies, as the distributed mesh would hold them), plus boundary-copy
//! totals — "the amount of communications across partition model boundaries
//! will increase as the part boundary gets rougher".

use pumi_mesh::Mesh;
use pumi_util::stats::LoadStats;
use pumi_util::{Dim, PartId};

/// Per-dimension partition statistics.
#[derive(Debug, Clone)]
pub struct PartitionQuality {
    /// Number of parts.
    pub nparts: usize,
    /// Per-part entity counts, `counts[dim][part]` (with boundary copies).
    pub counts: [Vec<f64>; 4],
    /// Total part-boundary entity copies per dimension (an entity on k
    /// parts contributes k).
    pub boundary_copies: [usize; 4],
    /// Dual-graph edge cut (element side pairs crossing parts).
    pub edge_cut: usize,
}

impl PartitionQuality {
    /// Compute the quality of `labels` over `mesh`.
    pub fn compute(mesh: &Mesh, labels: &[PartId], nparts: usize) -> PartitionQuality {
        let elem_dim = mesh.elem_dim();
        let d_elem = mesh.elem_dim_t();
        let mut counts: [Vec<f64>; 4] = [
            vec![0.0; nparts],
            vec![0.0; nparts],
            vec![0.0; nparts],
            vec![0.0; nparts],
        ];
        let mut boundary_copies = [0usize; 4];
        // Elements count on their own part.
        for e in mesh.iter(d_elem) {
            counts[elem_dim][labels[e.idx()] as usize] += 1.0;
        }
        // Lower entities count once per residence part.
        for d in 0..elem_dim {
            let dim = Dim::from_usize(d);
            for a in mesh.iter(dim) {
                let mut parts: Vec<PartId> = mesh
                    .adjacent(a, d_elem)
                    .iter()
                    .map(|e| labels[e.idx()])
                    .collect();
                parts.sort_unstable();
                parts.dedup();
                for &p in &parts {
                    counts[d][p as usize] += 1.0;
                }
                if parts.len() > 1 {
                    boundary_copies[d] += parts.len();
                }
            }
        }
        // Edge cut.
        let mut edge_cut = 0usize;
        for e in mesh.iter(d_elem) {
            for n in mesh.adjacent(e, d_elem) {
                if e < n && labels[e.idx()] != labels[n.idx()] {
                    edge_cut += 1;
                }
            }
        }
        PartitionQuality {
            nparts,
            counts,
            boundary_copies,
            edge_cut,
        }
    }

    /// Load statistics for one entity dimension.
    pub fn stats(&self, d: Dim) -> LoadStats {
        LoadStats::of(&self.counts[d.as_usize()])
    }

    /// Imbalance percentage (Table II's "Imb.%") for one dimension.
    pub fn imbalance_pct(&self, d: Dim) -> f64 {
        self.stats(d).imbalance_pct()
    }

    /// Mean per-part count for one dimension (Table II's "Mean" rows).
    pub fn mean(&self, d: Dim) -> f64 {
        self.stats(d).mean
    }

    /// Total boundary copies across dimensions (the communication-volume
    /// proxy the paper reports shrinking under ParMA).
    pub fn total_boundary_copies(&self) -> usize {
        self.boundary_copies.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::DualGraph;
    use crate::multilevel::{partition_graph, GraphPartOpts};
    use pumi_meshgen::tri_rect;

    fn labels_of(mesh: &Mesh, nparts: usize) -> Vec<PartId> {
        let g = DualGraph::build(mesh);
        let gl = partition_graph(&g, nparts, GraphPartOpts::default());
        let mut labels = vec![0 as PartId; mesh.index_space(mesh.elem_dim_t())];
        for (node, &e) in g.elems.iter().enumerate() {
            labels[e.idx()] = gl[node];
        }
        labels
    }

    #[test]
    fn counts_match_hand_computation_two_halves() {
        // 2x1 strip split at x=1: each part: 2 elements, vertices 4 each
        // (two shared), edges: total 9, shared 1.
        let m = tri_rect(2, 1, 2.0, 1.0);
        let mut labels = vec![0 as PartId; m.index_space(m.elem_dim_t())];
        for e in m.iter(m.elem_dim_t()) {
            labels[e.idx()] = if m.centroid(e)[0] < 1.0 { 0 } else { 1 };
        }
        let q = PartitionQuality::compute(&m, &labels, 2);
        assert_eq!(q.counts[2], vec![2.0, 2.0]);
        assert_eq!(q.counts[0], vec![4.0, 4.0]); // 6 vertices, 2 doubled
        assert_eq!(q.boundary_copies[0], 4);
        assert_eq!(q.boundary_copies[1], 2);
        assert_eq!(q.edge_cut, 1);
        assert_eq!(q.total_boundary_copies(), 6);
    }

    #[test]
    fn stats_and_imbalance() {
        let m = tri_rect(8, 8, 1.0, 1.0);
        let labels = labels_of(&m, 4);
        let q = PartitionQuality::compute(&m, &labels, 4);
        assert!(q.imbalance_pct(Dim::Face) < 10.0);
        assert!(q.mean(Dim::Face) > 0.0);
        // Vertex counts include copies: sum over parts >= serial count.
        let vsum: f64 = q.counts[0].iter().sum();
        assert!(vsum >= m.count(Dim::Vertex) as f64);
    }
}
