//! Filtered iteration — the paper's **Iterator** component ("component for
//! iterating over a range of data", §II).
//!
//! Beyond the plain per-dimension [`Mesh::iter`], applications iterate by
//! topology (all tets), by classification (all faces on a model face), or
//! over reversible snapshots while modifying the mesh. These helpers keep
//! those loops deterministic: index order, skipping dead slots.

use crate::mesh::Mesh;
use crate::topology::Topology;
use pumi_geom::GeomEnt;
use pumi_util::{Dim, MeshEnt};

impl Mesh {
    /// Iterate live entities of a given topology.
    pub fn iter_topo(&self, t: Topology) -> impl Iterator<Item = MeshEnt> + '_ {
        self.iter(t.dim()).filter(move |&e| self.topo(e) == t)
    }

    /// Iterate live entities of dimension `d` classified on model entity `g`.
    pub fn iter_classified(&self, d: Dim, g: GeomEnt) -> impl Iterator<Item = MeshEnt> + '_ {
        self.iter(d).filter(move |&e| self.class_of(e) == g)
    }

    /// Iterate live entities of dimension `d` classified on any model entity
    /// of dimension `model_dim` (e.g. all boundary faces).
    pub fn iter_classified_dim(
        &self,
        d: Dim,
        model_dim: Dim,
    ) -> impl Iterator<Item = MeshEnt> + '_ {
        self.iter(d).filter(move |&e| {
            let g = self.class_of(e);
            g != crate::mesh::NO_GEOM && g.dim() == model_dim
        })
    }

    /// Snapshot the live entities of dimension `d` into a vector — the safe
    /// pattern for loops that modify the mesh while iterating.
    pub fn snapshot(&self, d: Dim) -> Vec<MeshEnt> {
        self.iter(d).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mesh::NO_GEOM;

    #[test]
    fn iter_by_topology() {
        let mut m = Mesh::new(3);
        let v: Vec<u32> = [
            [0., 0., 0.],
            [1., 0., 0.],
            [0., 1., 0.],
            [0., 0., 1.],
            [1., 1., 1.],
            [2., 1., 1.],
        ]
        .iter()
        .map(|&x| m.add_vertex(x, NO_GEOM).index())
        .collect();
        m.add_element(Topology::Tet, &[v[0], v[1], v[2], v[3]], NO_GEOM);
        m.add_element(Topology::Pyramid, &[v[0], v[1], v[4], v[2], v[5]], NO_GEOM);
        assert_eq!(m.iter_topo(Topology::Tet).count(), 1);
        assert_eq!(m.iter_topo(Topology::Pyramid).count(), 1);
        assert_eq!(
            m.iter_topo(Topology::Triangle).count() + m.iter_topo(Topology::Quad).count(),
            m.count(Dim::Face)
        );
    }

    #[test]
    fn iter_by_classification() {
        let mut m = Mesh::new(2);
        let g1 = GeomEnt::new(Dim::Edge, 1);
        let g2 = GeomEnt::new(Dim::Face, 1);
        let a = m.add_vertex([0.; 3], g1);
        let b = m.add_vertex([1., 0., 0.], g1);
        let c = m.add_vertex([0., 1., 0.], g2);
        m.add_element(Topology::Triangle, &[a.index(), b.index(), c.index()], g2);
        assert_eq!(m.iter_classified(Dim::Vertex, g1).count(), 2);
        assert_eq!(m.iter_classified(Dim::Vertex, g2).count(), 1);
        assert_eq!(m.iter_classified_dim(Dim::Vertex, Dim::Edge).count(), 2);
    }

    #[test]
    fn snapshot_allows_mutation() {
        let mut m = Mesh::new(2);
        let v: Vec<u32> = [[0., 0., 0.], [1., 0., 0.], [0., 1., 0.], [1., 1., 0.]]
            .iter()
            .map(|&x| m.add_vertex(x, NO_GEOM).index())
            .collect();
        m.add_element(Topology::Triangle, &[v[0], v[1], v[2]], NO_GEOM);
        m.add_element(Topology::Triangle, &[v[1], v[3], v[2]], NO_GEOM);
        for e in m.snapshot(Dim::Face) {
            m.delete_with_orphans(e);
        }
        assert_eq!(m.count(Dim::Face), 0);
        assert_eq!(m.count(Dim::Vertex), 0);
        m.assert_valid();
    }
}
