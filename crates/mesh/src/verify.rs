//! Mesh validity checking.
//!
//! Every structural invariant of the complete representation is checkable;
//! tests and the distributed stack call [`Mesh::verify`] after each
//! modification phase (generation, adaptation, migration) so corruption is
//! caught at its source rather than three algorithms later.

use crate::mesh::{Mesh, NO_GEOM};
use pumi_util::{Dim, MeshEnt};

impl Mesh {
    /// Check structural invariants; returns the list of violations (empty
    /// means valid):
    ///
    /// 1. every live non-vertex entity has live downward entities,
    /// 2. up/down adjacency is reciprocal,
    /// 3. the find-or-create indexes agree with storage,
    /// 4. sides bound at most 2 elements (manifoldness),
    /// 5. element vertex lists have no duplicates.
    pub fn verify(&self) -> Vec<String> {
        let mut errs = Vec::new();
        for d in 1..=3usize {
            let dim = Dim::from_usize(d);
            for e in self.iter(dim) {
                // 5. vertex list sane
                let vs = self.verts_of(e);
                let mut sorted = vs.to_vec();
                sorted.sort_unstable();
                sorted.dedup();
                if sorted.len() != vs.len() {
                    errs.push(format!("{e:?} has duplicate vertices {vs:?}"));
                }
                for &v in vs {
                    if !self.is_live(MeshEnt::vertex(v)) {
                        errs.push(format!("{e:?} references dead vertex {v}"));
                    }
                }
                // 1 & 2. downs live and reciprocal.
                for sub in self.down_ents(e) {
                    if !self.is_live(sub) {
                        errs.push(format!("{e:?} has dead down {sub:?}"));
                        continue;
                    }
                    if !self.up_ents(sub).contains(&e) {
                        errs.push(format!("{sub:?} missing up-link to {e:?}"));
                    }
                }
            }
        }
        // 2 (other direction): every up-link points at a live entity that
        // lists us among its downs.
        for d in 0..3usize {
            let dim = Dim::from_usize(d);
            for e in self.iter(dim) {
                for u in self.up_ents(e) {
                    if !self.is_live(u) {
                        errs.push(format!("{e:?} has dead up {u:?}"));
                    } else if d > 0 && !self.down_ents(u).contains(&e) {
                        errs.push(format!("{u:?} missing down-link to {e:?}"));
                    }
                }
            }
        }
        // 3. lookups agree.
        for e in self.iter(Dim::Edge) {
            let vs = self.verts_of(e);
            match self.find_entity(Dim::Edge, vs) {
                Some(found) if found == e => {}
                other => errs.push(format!("edge lookup broken for {e:?}: {other:?}")),
            }
        }
        for f in self.iter(Dim::Face) {
            let vs = self.verts_of(f).to_vec();
            match self.find_entity(Dim::Face, &vs) {
                Some(found) if found == f => {}
                other => errs.push(format!("face lookup broken for {f:?}: {other:?}")),
            }
        }
        // 4. manifold sides.
        let side_dim = Dim::from_usize(self.elem_dim() - 1);
        for s in self.iter(side_dim) {
            let n = self.up_count(s);
            if n > 2 {
                errs.push(format!("side {s:?} bounds {n} elements (non-manifold)"));
            }
        }
        errs
    }

    /// Panic with a readable report if [`Mesh::verify`] finds violations.
    pub fn assert_valid(&self) {
        let errs = self.verify();
        assert!(
            errs.is_empty(),
            "mesh invalid ({} violations):\n  {}",
            errs.len(),
            errs.join("\n  ")
        );
    }

    /// Count entities classified on no model entity (diagnostics).
    pub fn count_unclassified(&self) -> usize {
        Dim::ALL
            .iter()
            .map(|&d| {
                self.iter(d)
                    .filter(|&e| self.class_of(e) == NO_GEOM)
                    .count()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use crate::mesh::{Mesh, NO_GEOM};
    use crate::topology::Topology;
    use pumi_util::Dim;

    fn tet_pair() -> Mesh {
        let mut m = Mesh::new(3);
        let v: Vec<u32> = [
            [0., 0., 0.],
            [1., 0., 0.],
            [0., 1., 0.],
            [0., 0., 1.],
            [1., 1., 1.],
        ]
        .iter()
        .map(|&x| m.add_vertex(x, NO_GEOM).index())
        .collect();
        m.add_element(Topology::Tet, &[v[0], v[1], v[2], v[3]], NO_GEOM);
        m.add_element(Topology::Tet, &[v[1], v[2], v[3], v[4]], NO_GEOM);
        m
    }

    #[test]
    fn valid_mesh_passes() {
        let m = tet_pair();
        assert!(m.verify().is_empty());
        m.assert_valid();
    }

    #[test]
    fn deletion_keeps_validity() {
        let mut m = tet_pair();
        let t: Vec<_> = m.elems().collect();
        m.delete_with_orphans(t[1]);
        m.assert_valid();
        assert_eq!(m.count(Dim::Region), 1);
        assert_eq!(m.count(Dim::Face), 4);
        assert_eq!(m.count(Dim::Edge), 6);
        assert_eq!(m.count(Dim::Vertex), 4);
    }

    #[test]
    fn delete_and_recreate_reuses_slots() {
        let mut m = tet_pair();
        let before = m.index_space(Dim::Region);
        let t: Vec<_> = m.elems().collect();
        m.delete(t[0]);
        // Recreate the same tet: faces still exist, so find-or-create reuses
        // them; the region slot comes from the free list.
        let verts = [0u32, 1, 2, 3];
        m.add_element(Topology::Tet, &verts, NO_GEOM);
        assert_eq!(m.index_space(Dim::Region), before);
        m.assert_valid();
    }

    #[test]
    #[should_panic(expected = "still bounds")]
    fn bottom_up_delete_rejected() {
        let mut m = tet_pair();
        let f = m.iter(Dim::Face).next().unwrap();
        m.delete(f);
    }

    #[test]
    fn unclassified_count() {
        let m = tet_pair();
        assert!(m.count_unclassified() > 0);
    }
}
