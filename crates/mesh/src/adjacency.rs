//! General adjacency queries composed from the one-level links.
//!
//! "The minimal requirement of any such mesh representation is complete
//! representation with which the complexity of any mesh adjacency
//! interrogation is O(1) (i.e., not a function of mesh size)" (§I). Every
//! query here touches only the local neighbourhood of the input entity; the
//! Criterion bench `adjacency_o1` demonstrates the flat cost profile across
//! mesh sizes.

use crate::mesh::Mesh;
use pumi_util::{Dim, MeshEnt};

impl Mesh {
    /// All entities of dimension `target` adjacent to `e`.
    ///
    /// * `target < e.dim()`: the downward closure restricted to `target`
    ///   (e.g. region → vertices),
    /// * `target > e.dim()`: the upward closure (e.g. vertex → regions),
    /// * `target == e.dim()`: same-dimension neighbours bridged through
    ///   dimension `target - 1` (elements sharing a side); for vertices,
    ///   vertices sharing an edge.
    ///
    /// Results are deduplicated and returned in first-encountered order
    /// (deterministic given the mesh construction order).
    pub fn adjacent(&self, e: MeshEnt, target: Dim) -> Vec<MeshEnt> {
        let d = e.dim().as_usize();
        let t = target.as_usize();
        use std::cmp::Ordering;
        match t.cmp(&d) {
            Ordering::Less => self.downward(e, target),
            Ordering::Greater => self.upward(e, target),
            Ordering::Equal => {
                let bridge = if d == 0 {
                    Dim::Edge
                } else {
                    Dim::from_usize(d - 1)
                };
                self.neighbors_via(e, bridge)
            }
        }
    }

    /// Downward adjacency to an arbitrary lower dimension.
    fn downward(&self, e: MeshEnt, target: Dim) -> Vec<MeshEnt> {
        let d = e.dim().as_usize();
        let t = target.as_usize();
        debug_assert!(t < d);
        if t == 0 {
            // Fast path: vertex lists are stored directly.
            return self
                .verts_of(e)
                .iter()
                .map(|&v| MeshEnt::vertex(v))
                .collect();
        }
        if t + 1 == d {
            return self.down_ents(e);
        }
        // d=3, t=1: region → faces → edges with dedupe (≤ 12 edges for hex).
        let mut out: Vec<MeshEnt> = Vec::with_capacity(12);
        for f in self.down_ents(e) {
            for sub in self.down_ents(f) {
                if !out.contains(&sub) {
                    out.push(sub);
                }
            }
        }
        out
    }

    /// Upward adjacency to an arbitrary higher dimension.
    fn upward(&self, e: MeshEnt, target: Dim) -> Vec<MeshEnt> {
        let d = e.dim().as_usize();
        let t = target.as_usize();
        debug_assert!(t > d);
        let mut frontier: Vec<MeshEnt> = self.up_ents(e);
        let mut level = d + 1;
        while level < t {
            let mut next: Vec<MeshEnt> = Vec::with_capacity(frontier.len() * 2);
            for x in &frontier {
                for u in self.up_ents(*x) {
                    if !next.contains(&u) {
                        next.push(u);
                    }
                }
            }
            frontier = next;
            level += 1;
        }
        frontier
    }

    /// Same-dimension neighbours of `e` bridged through `bridge` entities:
    /// all entities of `e.dim()` that share a `bridge`-dimensional entity
    /// with `e`. `e` itself is excluded.
    pub fn neighbors_via(&self, e: MeshEnt, bridge: Dim) -> Vec<MeshEnt> {
        let d = e.dim();
        let bridges: Vec<MeshEnt> = if bridge.as_usize() < d.as_usize() {
            self.downward(e, bridge)
        } else {
            self.upward(e, bridge)
        };
        let mut out = Vec::new();
        for b in bridges {
            let peers = if bridge.as_usize() < d.as_usize() {
                self.upward(b, d)
            } else {
                self.downward(b, d)
            };
            for p in peers {
                if p != e && !out.contains(&p) {
                    out.push(p);
                }
            }
        }
        out
    }

    /// The downward closure of `e`: every entity of every lower dimension
    /// bounding `e`, including `e` itself. Ordered low-dim-first (vertices,
    /// then edges, ...), which is the creation order migration needs.
    pub fn closure(&self, e: MeshEnt) -> Vec<MeshEnt> {
        let mut out = Vec::new();
        for t in 0..e.dim().as_usize() {
            out.extend(self.downward(e, Dim::from_usize(t)));
        }
        out.push(e);
        out
    }

    /// Whether the side `s` (dimension `elem_dim - 1`) lies on the mesh's
    /// external boundary, i.e. bounds fewer than two elements.
    pub fn is_boundary_side(&self, s: MeshEnt) -> bool {
        debug_assert_eq!(s.dim().as_usize() + 1, self.elem_dim());
        self.up_count(s) < 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mesh::NO_GEOM;
    use crate::topology::Topology;

    /// Two tets sharing face (1,2,3).
    fn two_tets() -> (Mesh, MeshEnt, MeshEnt) {
        let mut m = Mesh::new(3);
        let v: Vec<u32> = [
            [0., 0., 0.],
            [1., 0., 0.],
            [0., 1., 0.],
            [0., 0., 1.],
            [1., 1., 1.],
        ]
        .iter()
        .map(|&x| m.add_vertex(x, NO_GEOM).index())
        .collect();
        let t0 = m.add_element(Topology::Tet, &[v[0], v[1], v[2], v[3]], NO_GEOM);
        let t1 = m.add_element(Topology::Tet, &[v[1], v[2], v[3], v[4]], NO_GEOM);
        (m, t0, t1)
    }

    #[test]
    fn counts_after_two_tets() {
        let (m, _, _) = two_tets();
        assert_eq!(m.count(Dim::Vertex), 5);
        assert_eq!(m.count(Dim::Region), 2);
        // 2 tets sharing a face: 4+4-3=5 verts? no: 5 verts, faces 4+4-1=7,
        // edges 6+6-3=9.
        assert_eq!(m.count(Dim::Face), 7);
        assert_eq!(m.count(Dim::Edge), 9);
    }

    #[test]
    fn region_downward_queries() {
        let (m, t0, _) = two_tets();
        assert_eq!(m.adjacent(t0, Dim::Vertex).len(), 4);
        assert_eq!(m.adjacent(t0, Dim::Edge).len(), 6);
        assert_eq!(m.adjacent(t0, Dim::Face).len(), 4);
    }

    #[test]
    fn vertex_upward_queries() {
        let (m, _, _) = two_tets();
        // Vertex 1 (shared) bounds both tets.
        let v1 = MeshEnt::vertex(1);
        assert_eq!(m.adjacent(v1, Dim::Region).len(), 2);
        // Vertex 0 only bounds tet 0.
        let v0 = MeshEnt::vertex(0);
        assert_eq!(m.adjacent(v0, Dim::Region).len(), 1);
        // Vertex 0 has 3 edges, vertex 1 has 4.
        assert_eq!(m.adjacent(v0, Dim::Edge).len(), 3);
        assert_eq!(m.adjacent(v1, Dim::Edge).len(), 4);
    }

    #[test]
    fn element_neighbors_via_face() {
        let (m, t0, t1) = two_tets();
        let n0 = m.adjacent(t0, Dim::Region);
        assert_eq!(n0, vec![t1]);
        let n1 = m.neighbors_via(t1, Dim::Face);
        assert_eq!(n1, vec![t0]);
        // Bridged through vertices they are also neighbours.
        let nv = m.neighbors_via(t0, Dim::Vertex);
        assert_eq!(nv, vec![t1]);
    }

    #[test]
    fn vertex_neighbors_via_edge() {
        let (m, _, _) = two_tets();
        let v0 = MeshEnt::vertex(0);
        let nbrs = m.adjacent(v0, Dim::Vertex);
        let mut ids: Vec<u32> = nbrs.iter().map(|e| e.index()).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![1, 2, 3]);
    }

    #[test]
    fn closure_contains_all_dims() {
        let (m, t0, _) = two_tets();
        let c = m.closure(t0);
        // 4 verts + 6 edges + 4 faces + self
        assert_eq!(c.len(), 15);
        assert_eq!(c.last().copied(), Some(t0));
        assert!(c[..4].iter().all(|e| e.dim() == Dim::Vertex));
    }

    #[test]
    fn boundary_sides() {
        let (m, _, _) = two_tets();
        let boundary: Vec<MeshEnt> = m
            .iter(Dim::Face)
            .filter(|&f| m.is_boundary_side(f))
            .collect();
        // 7 faces, 1 interior.
        assert_eq!(boundary.len(), 6);
    }

    #[test]
    fn shared_face_found_not_duplicated() {
        let (m, t0, t1) = two_tets();
        let f0 = m.adjacent(t0, Dim::Face);
        let f1 = m.adjacent(t1, Dim::Face);
        let shared: Vec<_> = f0.iter().filter(|f| f1.contains(f)).collect();
        assert_eq!(shared.len(), 1);
        assert_eq!(m.up_count(*shared[0]), 2);
    }

    #[test]
    fn two_d_mesh_neighbors() {
        // Two triangles sharing an edge.
        let mut m = Mesh::new(2);
        let v: Vec<u32> = [[0., 0., 0.], [1., 0., 0.], [0., 1., 0.], [1., 1., 0.]]
            .iter()
            .map(|&x| m.add_vertex(x, NO_GEOM).index())
            .collect();
        let a = m.add_element(Topology::Triangle, &[v[0], v[1], v[2]], NO_GEOM);
        let b = m.add_element(Topology::Triangle, &[v[1], v[3], v[2]], NO_GEOM);
        assert_eq!(m.count(Dim::Edge), 5);
        assert_eq!(m.adjacent(a, Dim::Face), vec![b]);
        assert!(m.is_boundary_side(m.find_entity(Dim::Edge, &[v[0], v[1]]).unwrap()));
        assert!(!m.is_boundary_side(m.find_entity(Dim::Edge, &[v[1], v[2]]).unwrap()));
    }
}
