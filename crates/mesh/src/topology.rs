//! Entity topologies and their canonical templates.
//!
//! The mesh supports the standard unstructured zoo: triangles and quads in
//! 2D, tetrahedra, hexahedra, prisms (wedges) and pyramids in 3D. Each
//! topology defines how its one-level-down entities are formed from its
//! vertices — the templates below fix those orderings once for the whole
//! stack (generation, adaptation, migration all agree on them).

use pumi_util::Dim;

/// The shape of a mesh entity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Topology {
    /// A mesh vertex.
    Vertex,
    /// A mesh edge (2 vertices).
    Edge,
    /// A triangular face.
    Triangle,
    /// A quadrilateral face.
    Quad,
    /// A tetrahedral region.
    Tet,
    /// A hexahedral region.
    Hex,
    /// A triangular prism (wedge).
    Prism,
    /// A pyramid (quad base, apex).
    Pyramid,
}

impl Topology {
    /// The entity dimension of this topology.
    pub fn dim(self) -> Dim {
        match self {
            Topology::Vertex => Dim::Vertex,
            Topology::Edge => Dim::Edge,
            Topology::Triangle | Topology::Quad => Dim::Face,
            Topology::Tet | Topology::Hex | Topology::Prism | Topology::Pyramid => Dim::Region,
        }
    }

    /// Number of vertices.
    pub fn num_verts(self) -> usize {
        match self {
            Topology::Vertex => 1,
            Topology::Edge => 2,
            Topology::Triangle => 3,
            Topology::Quad => 4,
            Topology::Tet => 4,
            Topology::Pyramid => 5,
            Topology::Prism => 6,
            Topology::Hex => 8,
        }
    }

    /// The one-level-down boundary entities as local-vertex-index tuples,
    /// paired with the topology of each.
    ///
    /// Orderings follow the usual finite-element conventions; what matters
    /// for correctness is only that they are used consistently.
    pub fn down_templates(self) -> &'static [(&'static [usize], Topology)] {
        use Topology::*;
        match self {
            Vertex => &[],
            Edge => &[(&[0], Vertex), (&[1], Vertex)],
            Triangle => &[(&[0, 1], Edge), (&[1, 2], Edge), (&[2, 0], Edge)],
            Quad => &[
                (&[0, 1], Edge),
                (&[1, 2], Edge),
                (&[2, 3], Edge),
                (&[3, 0], Edge),
            ],
            Tet => &[
                (&[0, 1, 2], Triangle),
                (&[0, 1, 3], Triangle),
                (&[1, 2, 3], Triangle),
                (&[0, 2, 3], Triangle),
            ],
            Pyramid => &[
                (&[0, 1, 2, 3], Quad),
                (&[0, 1, 4], Triangle),
                (&[1, 2, 4], Triangle),
                (&[2, 3, 4], Triangle),
                (&[3, 0, 4], Triangle),
            ],
            Prism => &[
                (&[0, 1, 2], Triangle),
                (&[3, 4, 5], Triangle),
                (&[0, 1, 4, 3], Quad),
                (&[1, 2, 5, 4], Quad),
                (&[2, 0, 3, 5], Quad),
            ],
            Hex => &[
                (&[0, 1, 2, 3], Quad),
                (&[4, 5, 6, 7], Quad),
                (&[0, 1, 5, 4], Quad),
                (&[1, 2, 6, 5], Quad),
                (&[2, 3, 7, 6], Quad),
                (&[3, 0, 4, 7], Quad),
            ],
        }
    }

    /// Number of one-level-down entities.
    pub fn num_down(self) -> usize {
        self.down_templates().len()
    }

    /// Encode as a byte for messages.
    pub fn to_u8(self) -> u8 {
        self as u8
    }

    /// Decode from a byte.
    ///
    /// # Panics
    /// Panics on an unknown code (corrupted message).
    pub fn from_u8(x: u8) -> Topology {
        Topology::try_from_u8(x).unwrap_or_else(|| panic!("unknown topology code {x}"))
    }

    /// Decode from a byte, rejecting unknown codes. Deserialization layers
    /// use this so a corrupt frame surfaces as a typed error, not a panic.
    pub fn try_from_u8(x: u8) -> Option<Topology> {
        use Topology::*;
        match x {
            0 => Some(Vertex),
            1 => Some(Edge),
            2 => Some(Triangle),
            3 => Some(Quad),
            4 => Some(Tet),
            5 => Some(Hex),
            6 => Some(Prism),
            7 => Some(Pyramid),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [Topology; 8] = [
        Topology::Vertex,
        Topology::Edge,
        Topology::Triangle,
        Topology::Quad,
        Topology::Tet,
        Topology::Hex,
        Topology::Prism,
        Topology::Pyramid,
    ];

    #[test]
    fn codes_roundtrip() {
        for t in ALL {
            assert_eq!(Topology::from_u8(t.to_u8()), t);
            assert_eq!(Topology::try_from_u8(t.to_u8()), Some(t));
        }
        assert_eq!(Topology::try_from_u8(8), None);
        assert_eq!(Topology::try_from_u8(0xFF), None);
    }

    #[test]
    fn template_indices_in_range() {
        for t in ALL {
            for (tpl, sub) in t.down_templates() {
                assert_eq!(tpl.len(), sub.num_verts());
                for &i in *tpl {
                    assert!(i < t.num_verts(), "{t:?} template index {i} out of range");
                }
                assert_eq!(sub.dim().as_usize() + 1, t.dim().as_usize());
            }
        }
    }

    #[test]
    fn euler_counts_for_closed_templates() {
        // Each element's boundary must reference every vertex.
        for t in ALL {
            if t.dim() == Dim::Vertex {
                continue;
            }
            let mut seen = vec![false; t.num_verts()];
            for (tpl, _) in t.down_templates() {
                for &i in *tpl {
                    seen[i] = true;
                }
            }
            assert!(seen.iter().all(|&s| s), "{t:?} boundary misses a vertex");
        }
    }

    #[test]
    fn tet_faces_cover_each_edge_twice() {
        // In a closed 2-manifold boundary (tet surface), each edge appears in
        // exactly 2 faces.
        use std::collections::HashMap;
        let mut count: HashMap<(usize, usize), usize> = HashMap::new();
        for (tpl, sub) in Topology::Tet.down_templates() {
            assert_eq!(*sub, Topology::Triangle);
            for k in 0..3 {
                let a = tpl[k];
                let b = tpl[(k + 1) % 3];
                let key = (a.min(b), a.max(b));
                *count.entry(key).or_default() += 1;
            }
        }
        assert_eq!(count.len(), 6);
        assert!(count.values().all(|&c| c == 2));
    }

    #[test]
    fn hex_faces_cover_each_edge_twice() {
        use std::collections::HashMap;
        let mut count: HashMap<(usize, usize), usize> = HashMap::new();
        for (tpl, _) in Topology::Hex.down_templates() {
            let n = tpl.len();
            for k in 0..n {
                let a = tpl[k];
                let b = tpl[(k + 1) % n];
                let key = (a.min(b), a.max(b));
                *count.entry(key).or_default() += 1;
            }
        }
        assert_eq!(count.len(), 12);
        assert!(count.values().all(|&c| c == 2));
    }
}
