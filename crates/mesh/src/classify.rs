//! Geometric classification maintenance (§II).
//!
//! "Each mesh entity maintains its association to the highest level geometric
//! model entity that it partly represents, referred to as geometric
//! classification." Generators classify vertices exactly (they know the
//! lattice); this module derives the classification of edges, faces and
//! regions from topology: an entity on the domain boundary is classified by
//! applying the domain's point classifier to its centroid, everything else is
//! classified on the interior model entity.

use crate::mesh::Mesh;
use pumi_geom::GeomEnt;
use pumi_util::{Dim, MeshEnt};

impl Mesh {
    /// Derive classification for all non-vertex entities.
    ///
    /// * Elements are classified on `interior`.
    /// * Sides (dim `elem_dim - 1`) bounding exactly one element, and every
    ///   lower entity in their closure, are *boundary* entities; each is
    ///   classified by `classify(centroid)`.
    /// * Remaining interior entities are classified on `interior`.
    ///
    /// Vertex classification is left untouched — generators set it exactly.
    #[allow(clippy::needless_range_loop)] // d is a dimension, not just an index
    pub fn derive_classification(
        &mut self,
        interior: GeomEnt,
        classify: &dyn Fn([f64; 3]) -> GeomEnt,
    ) {
        let elem_dim = self.elem_dim();
        let side_dim = Dim::from_usize(elem_dim - 1);

        // Elements: interior region/face of the model.
        let elems: Vec<MeshEnt> = self.elems().collect();
        for e in elems {
            self.set_class(e, interior);
        }
        // Mark the boundary closure.
        let mut on_boundary: Vec<Vec<bool>> = (0..elem_dim)
            .map(|d| vec![false; self.index_space(Dim::from_usize(d))])
            .collect();
        let sides: Vec<MeshEnt> = self.iter(side_dim).collect();
        for s in sides {
            if self.is_boundary_side(s) {
                on_boundary[side_dim.as_usize()][s.idx()] = true;
                for sub in self.closure(s) {
                    if sub.dim().as_usize() < side_dim.as_usize() + 1 && sub.dim() != Dim::Vertex {
                        on_boundary[sub.dim().as_usize()][sub.idx()] = true;
                    }
                }
            }
        }
        // Classify every non-vertex, non-element entity.
        for d in 1..elem_dim {
            let dim = Dim::from_usize(d);
            let ents: Vec<MeshEnt> = self.iter(dim).collect();
            for e in ents {
                let g = if on_boundary[d][e.idx()] {
                    classify(self.centroid(e))
                } else {
                    interior
                };
                self.set_class(e, g);
            }
        }
    }

    /// Count entities of dimension `d` classified on model entities of
    /// dimension `model_dim` — a common sanity statistic.
    pub fn count_classified(&self, d: Dim, model_dim: Dim) -> usize {
        self.iter(d)
            .filter(|&e| {
                let g = self.class_of(e);
                g != crate::mesh::NO_GEOM && g.dim() == model_dim
            })
            .count()
    }
}

#[cfg(test)]
mod tests {
    use crate::mesh::{Mesh, NO_GEOM};
    use crate::topology::Topology;
    use pumi_geom::builders::{classify_rectangle, rectangle};
    use pumi_geom::GeomEnt;
    use pumi_util::Dim;

    /// A 2x1 rectangle split into 4 triangles around a center vertex.
    #[test]
    fn rectangle_fan_classification() {
        let (w, h) = (2.0, 1.0);
        let _model = rectangle(w, h);
        let mut m = Mesh::new(2);
        let pts = [
            [0., 0., 0.],
            [w, 0., 0.],
            [w, h, 0.],
            [0., h, 0.],
            [w / 2., h / 2., 0.],
        ];
        let v: Vec<u32> = pts
            .iter()
            .map(|&p| {
                let g = classify_rectangle(w, h, p);
                m.add_vertex(p, g).index()
            })
            .collect();
        for (a, b) in [(0, 1), (1, 2), (2, 3), (3, 0)] {
            m.add_element(Topology::Triangle, &[v[a], v[b], v[4]], NO_GEOM);
        }
        let interior = GeomEnt::new(Dim::Face, 1);
        m.derive_classification(interior, &|p| classify_rectangle(w, h, p));

        // 4 corner vertices classified on model vertices (set by hand above),
        // center on the model face.
        assert_eq!(m.count_classified(Dim::Vertex, Dim::Vertex), 4);
        assert_eq!(m.count_classified(Dim::Vertex, Dim::Face), 1);
        // 4 boundary edges on model edges, 4 interior on the model face.
        assert_eq!(m.count_classified(Dim::Edge, Dim::Edge), 4);
        assert_eq!(m.count_classified(Dim::Edge, Dim::Face), 4);
        // All faces interior.
        assert_eq!(m.count_classified(Dim::Face, Dim::Face), 4);
    }
}
