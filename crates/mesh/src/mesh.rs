//! The complete topological mesh representation (§II).
//!
//! Storage follows the one-level adjacency design of FMDB (refs 9, 10): every
//! entity stores its one-level downward entities (region→faces, face→edges,
//! edge→vertices) and its one-level upward entities (vertex→edges,
//! edge→faces, face→regions). Any d→d' adjacency query composes these in
//! time proportional to the *local* degree only — O(1) in mesh size, the
//! paper's "complete representation" requirement (ref. 2).
//!
//! Entities live in per-dimension fixed-stride arrays with free-list reuse,
//! so dynamic mesh modification (adaptation, migration) is O(1) per
//! create/delete amortized.

use crate::topology::Topology;
use pumi_geom::GeomEnt;
use pumi_util::{Dim, FxHashMap, InlineVec, MeshEnt, TagManager};

/// Classification value meaning "not classified yet".
pub const NO_GEOM: GeomEnt = GeomEnt(u32::MAX);

/// Maximum vertices of any supported topology (hex).
const MAX_VERTS: usize = 8;
/// Maximum one-level-down entities of any supported topology (hex: 6 faces;
/// quad/pyramid bound the face stride at 4/5; we use per-dim strides below).
const PAD: u32 = u32::MAX;

/// Per-dimension stride for the vertex lists.
const fn vstride(d: usize) -> usize {
    match d {
        1 => 2,
        2 => 4,
        3 => MAX_VERTS,
        _ => 0,
    }
}

/// Per-dimension stride for the one-level-down lists.
const fn dstride(d: usize) -> usize {
    match d {
        1 => 2, // edge -> 2 vertices
        2 => 4, // face -> up to 4 edges
        3 => 6, // region -> up to 6 faces
        _ => 0,
    }
}

/// A serial mesh part: the complete representation of §II.
pub struct Mesh {
    /// Element dimension: 2 (faces are elements) or 3 (regions).
    elem_dim: usize,
    /// Per-entity topology, per dimension.
    topo: [Vec<Topology>; 4],
    /// Fixed-stride vertex lists for dims 1..=3.
    verts: [Vec<u32>; 4],
    /// Fixed-stride one-level-down entity lists for dims 1..=3.
    down: [Vec<u32>; 4],
    /// One-level-up adjacency for dims 0..=2.
    up: [Vec<InlineVec>; 4],
    /// Vertex coordinates.
    coords: Vec<[f64; 3]>,
    /// Geometric classification per entity.
    class: [Vec<GeomEnt>; 4],
    /// Liveness per entity (free-list reuse).
    alive: [Vec<bool>; 4],
    free: [Vec<u32>; 4],
    n_alive: [usize; 4],
    /// Find-or-create indexes.
    edge_lookup: FxHashMap<u64, u32>,
    face_lookup: FxHashMap<[u32; 4], u32>,
    /// Attached user data.
    tags: TagManager,
}

impl std::fmt::Debug for Mesh {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Mesh{{dim:{}, v:{}, e:{}, f:{}, r:{}}}",
            self.elem_dim,
            self.count(Dim::Vertex),
            self.count(Dim::Edge),
            self.count(Dim::Face),
            self.count(Dim::Region)
        )
    }
}

fn edge_key(a: u32, b: u32) -> u64 {
    let (lo, hi) = if a < b { (a, b) } else { (b, a) };
    ((hi as u64) << 32) | lo as u64
}

fn face_key(verts: &[u32]) -> [u32; 4] {
    let mut k = [PAD; 4];
    k[..verts.len()].copy_from_slice(verts);
    k[..verts.len()].sort_unstable();
    k
}

impl Mesh {
    /// An empty mesh whose elements have dimension `elem_dim` (2 or 3).
    pub fn new(elem_dim: usize) -> Mesh {
        assert!(elem_dim == 2 || elem_dim == 3, "element dim must be 2 or 3");
        Mesh {
            elem_dim,
            topo: Default::default(),
            verts: Default::default(),
            down: Default::default(),
            up: Default::default(),
            coords: Vec::new(),
            class: Default::default(),
            alive: Default::default(),
            free: Default::default(),
            n_alive: [0; 4],
            edge_lookup: FxHashMap::default(),
            face_lookup: FxHashMap::default(),
            tags: TagManager::new(),
        }
    }

    /// The element dimension (2 or 3).
    #[inline]
    pub fn elem_dim(&self) -> usize {
        self.elem_dim
    }

    /// The element dimension as a [`Dim`].
    #[inline]
    pub fn elem_dim_t(&self) -> Dim {
        Dim::from_usize(self.elem_dim)
    }

    /// Number of live entities of dimension `d`.
    #[inline]
    pub fn count(&self, d: Dim) -> usize {
        self.n_alive[d.as_usize()]
    }

    /// Number of live elements (entities of the element dimension).
    #[inline]
    pub fn num_elems(&self) -> usize {
        self.n_alive[self.elem_dim]
    }

    /// Size of the index space for dimension `d` (live + dead slots).
    #[inline]
    pub fn index_space(&self, d: Dim) -> usize {
        self.alive[d.as_usize()].len()
    }

    /// Whether `e` refers to a live entity.
    #[inline]
    pub fn is_live(&self, e: MeshEnt) -> bool {
        let d = e.dim().as_usize();
        self.alive[d].get(e.idx()).copied().unwrap_or(false)
    }

    /// Iterate live entities of dimension `d` in index order (the paper's
    /// Iterator component; deterministic).
    pub fn iter(&self, d: Dim) -> impl Iterator<Item = MeshEnt> + '_ {
        let dd = d.as_usize();
        self.alive[dd]
            .iter()
            .enumerate()
            .filter(|(_, &a)| a)
            .map(move |(i, _)| MeshEnt::new(d, i as u32))
    }

    /// Iterate live elements.
    pub fn elems(&self) -> impl Iterator<Item = MeshEnt> + '_ {
        self.iter(self.elem_dim_t())
    }

    // ------------------------------------------------------------------
    // Creation
    // ------------------------------------------------------------------

    fn alloc(&mut self, d: usize, topo: Topology) -> u32 {
        let idx = if let Some(i) = self.free[d].pop() {
            let i_us = i as usize;
            self.topo[d][i_us] = topo;
            self.alive[d][i_us] = true;
            self.class[d][i_us] = NO_GEOM;
            if d > 0 {
                let vs = vstride(d);
                let ds = dstride(d);
                self.verts[d][i_us * vs..(i_us + 1) * vs].fill(PAD);
                self.down[d][i_us * ds..(i_us + 1) * ds].fill(PAD);
            }
            if d < 3 {
                self.up[d][i_us].clear();
            }
            i
        } else {
            let i = self.topo[d].len() as u32;
            self.topo[d].push(topo);
            self.alive[d].push(true);
            self.class[d].push(NO_GEOM);
            if d > 0 {
                self.verts[d].resize(self.verts[d].len() + vstride(d), PAD);
                self.down[d].resize(self.down[d].len() + dstride(d), PAD);
            }
            if d < 3 {
                self.up[d].push(InlineVec::new());
            }
            if d == 0 {
                self.coords.push([0.0; 3]);
            }
            i
        };
        self.n_alive[d] += 1;
        idx
    }

    /// Create a vertex at `x`, classified on `class`.
    pub fn add_vertex(&mut self, x: [f64; 3], class: GeomEnt) -> MeshEnt {
        let i = self.alloc(0, Topology::Vertex);
        self.coords[i as usize] = x;
        self.class[0][i as usize] = class;
        MeshEnt::vertex(i)
    }

    /// Find an existing entity with topology dimension matching `verts`.
    /// Edges are matched by their 2 vertices; faces by their sorted vertex
    /// tuple. Regions are not indexed (they are never find-or-created).
    pub fn find_entity(&self, d: Dim, verts: &[u32]) -> Option<MeshEnt> {
        match d {
            Dim::Edge => self
                .edge_lookup
                .get(&edge_key(verts[0], verts[1]))
                .map(|&i| MeshEnt::edge(i)),
            Dim::Face => self
                .face_lookup
                .get(&face_key(verts))
                .map(|&i| MeshEnt::face(i)),
            _ => None,
        }
    }

    /// Find-or-create an entity of `topo` over vertex ids `verts` (indices
    /// of live vertices), classified on `class` if newly created. Downward
    /// entities are created recursively with the same classification.
    ///
    /// Returns the entity handle. Existing entities keep their prior
    /// classification.
    pub fn add_entity(&mut self, topo: Topology, everts: &[u32], class: GeomEnt) -> MeshEnt {
        let d = topo.dim();
        assert_eq!(everts.len(), topo.num_verts(), "vertex count mismatch");
        debug_assert!(
            everts
                .iter()
                .all(|&v| self.alive[0].get(v as usize).copied().unwrap_or(false)),
            "dead or missing vertex in {everts:?}"
        );
        if d != Dim::Region {
            if let Some(e) = self.find_entity(d, everts) {
                return e;
            }
        }
        let dd = d.as_usize();
        let i = self.alloc(dd, topo);
        let i_us = i as usize;
        // Record vertex list.
        let vs = vstride(dd);
        self.verts[dd][i_us * vs..i_us * vs + everts.len()].copy_from_slice(everts);
        self.class[dd][i_us] = class;
        // Create/find downward entities per template and wire up-links.
        let me = MeshEnt::new(d, i);
        let templates = topo.down_templates();
        let ds = dstride(dd);
        for (k, (tpl, sub)) in templates.iter().enumerate() {
            let sub_ent = if dd == 1 {
                // Edge downs are its vertices directly.
                MeshEnt::vertex(everts[tpl[0]])
            } else {
                let sub_verts: Vec<u32> = tpl.iter().map(|&li| everts[li]).collect();
                self.add_entity(*sub, &sub_verts, class)
            };
            self.down[dd][i_us * ds + k] = sub_ent.index();
            self.up[dd - 1][sub_ent.idx()].push(i);
        }
        // Index for find-or-create.
        match d {
            Dim::Edge => {
                self.edge_lookup.insert(edge_key(everts[0], everts[1]), i);
            }
            Dim::Face => {
                self.face_lookup.insert(face_key(everts), i);
            }
            _ => {}
        }
        me
    }

    /// Create an element (entity of the mesh's element dimension).
    pub fn add_element(&mut self, topo: Topology, everts: &[u32], class: GeomEnt) -> MeshEnt {
        assert_eq!(
            topo.dim().as_usize(),
            self.elem_dim,
            "element topology dimension mismatch"
        );
        self.add_entity(topo, everts, class)
    }

    // ------------------------------------------------------------------
    // Deletion
    // ------------------------------------------------------------------

    /// Delete a live entity. The entity must not bound any live higher
    /// entity (delete top-down, as mesh modification does).
    ///
    /// # Panics
    /// Panics if `e` is dead or still has upward adjacencies.
    pub fn delete(&mut self, e: MeshEnt) {
        let d = e.dim().as_usize();
        let i = e.idx();
        assert!(self.alive[d][i], "delete of dead entity {e:?}");
        if d < 3 {
            assert!(
                self.up[d][i].is_empty(),
                "delete of {e:?} which still bounds {} entities",
                self.up[d][i].len()
            );
        }
        // Unlink from downward entities' up-lists and drop lookups.
        if d > 0 {
            let vs = vstride(d);
            let nv = self.topo[d][i].num_verts();
            let everts: Vec<u32> = self.verts[d][i * vs..i * vs + nv].to_vec();
            match d {
                1 => {
                    self.edge_lookup.remove(&edge_key(everts[0], everts[1]));
                }
                2 => {
                    self.face_lookup.remove(&face_key(&everts));
                }
                _ => {}
            }
            let ds = dstride(d);
            let nd = self.topo[d][i].num_down();
            for k in 0..nd {
                let sub = self.down[d][i * ds + k];
                if sub != PAD {
                    self.up[d - 1][sub as usize].remove_value(i as u32);
                }
            }
        }
        self.tags.remove_all(e);
        self.alive[d][i] = false;
        self.free[d].push(i as u32);
        self.n_alive[d] -= 1;
    }

    /// Delete an entity and then every downward entity left with no upward
    /// adjacency (cascading closure deletion, used by coarsening/migration).
    pub fn delete_with_orphans(&mut self, e: MeshEnt) {
        let d = e.dim().as_usize();
        let downs: Vec<MeshEnt> = if d > 0 { self.down_ents(e) } else { Vec::new() };
        self.delete(e);
        for sub in downs {
            let sd = sub.dim().as_usize();
            if self.alive[sd][sub.idx()] && self.up[sd][sub.idx()].is_empty() {
                self.delete_with_orphans(sub);
            }
        }
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The topology of `e`.
    #[inline]
    pub fn topo(&self, e: MeshEnt) -> Topology {
        self.topo[e.dim().as_usize()][e.idx()]
    }

    /// Vertex ids of `e` in canonical order. Not defined for vertices (a
    /// vertex's "vertex list" is its own index — callers handle dim 0).
    pub fn verts_of(&self, e: MeshEnt) -> &[u32] {
        let d = e.dim().as_usize();
        assert!(d > 0, "verts_of(vertex): use the handle's own index");
        let vs = vstride(d);
        let nv = self.topo[d][e.idx()].num_verts();
        &self.verts[d][e.idx() * vs..e.idx() * vs + nv]
    }

    /// One-level-down entity handles of `e`.
    pub fn down_ents(&self, e: MeshEnt) -> Vec<MeshEnt> {
        let d = e.dim().as_usize();
        assert!(d > 0, "vertices have no downward adjacency");
        let sub_dim = Dim::from_usize(d - 1);
        let ds = dstride(d);
        let nd = self.topo[d][e.idx()].num_down();
        self.down[d][e.idx() * ds..e.idx() * ds + nd]
            .iter()
            .map(|&i| MeshEnt::new(sub_dim, i))
            .collect()
    }

    /// One-level-up entity handles of `e` (entities of dim d+1 bounded by
    /// `e`), in adjacency-list order.
    pub fn up_ents(&self, e: MeshEnt) -> Vec<MeshEnt> {
        let d = e.dim().as_usize();
        if d >= 3 {
            return Vec::new();
        }
        let up_dim = Dim::from_usize(d + 1);
        self.up[d][e.idx()]
            .iter()
            .map(|&i| MeshEnt::new(up_dim, i))
            .collect()
    }

    /// Number of one-level-up adjacencies without allocating.
    #[inline]
    pub fn up_count(&self, e: MeshEnt) -> usize {
        let d = e.dim().as_usize();
        if d >= 3 {
            0
        } else {
            self.up[d][e.idx()].len()
        }
    }

    /// Coordinates of a vertex.
    #[inline]
    pub fn coords(&self, v: MeshEnt) -> [f64; 3] {
        debug_assert_eq!(v.dim(), Dim::Vertex);
        self.coords[v.idx()]
    }

    /// Move a vertex.
    #[inline]
    pub fn set_coords(&mut self, v: MeshEnt, x: [f64; 3]) {
        debug_assert_eq!(v.dim(), Dim::Vertex);
        self.coords[v.idx()] = x;
    }

    /// Geometric classification of `e`.
    #[inline]
    pub fn class_of(&self, e: MeshEnt) -> GeomEnt {
        self.class[e.dim().as_usize()][e.idx()]
    }

    /// Set the geometric classification of `e`.
    #[inline]
    pub fn set_class(&mut self, e: MeshEnt, g: GeomEnt) {
        self.class[e.dim().as_usize()][e.idx()] = g;
    }

    /// The tag manager (read).
    #[inline]
    pub fn tags(&self) -> &TagManager {
        &self.tags
    }

    /// The tag manager (write).
    #[inline]
    pub fn tags_mut(&mut self) -> &mut TagManager {
        &mut self.tags
    }

    /// Centroid of any entity.
    pub fn centroid(&self, e: MeshEnt) -> [f64; 3] {
        if e.dim() == Dim::Vertex {
            return self.coords(e);
        }
        let vs = self.verts_of(e);
        let mut c = [0.0; 3];
        for &v in vs {
            let x = self.coords[v as usize];
            c[0] += x[0];
            c[1] += x[1];
            c[2] += x[2];
        }
        let n = vs.len() as f64;
        [c[0] / n, c[1] / n, c[2] / n]
    }
}
