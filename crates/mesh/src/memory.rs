//! Memory accounting (§II-D: "performance measurement: run-time and memory
//! usage counter").
//!
//! Reports the bytes each storage family of the representation occupies —
//! the quantity the paper's hybrid work targets ("maximizes usable shared
//! memory") and the constraint adaptation partitions must satisfy ("the
//! resulting adapted mesh fits within memory").

use crate::mesh::Mesh;
use pumi_util::{Dim, InlineVec};

/// Byte usage of a mesh, by storage family.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MeshMemory {
    /// Topology enums, liveness flags, free lists.
    pub bookkeeping: usize,
    /// Vertex coordinates.
    pub coords: usize,
    /// Downward adjacency + vertex lists.
    pub downward: usize,
    /// Upward adjacency lists (including heap spill).
    pub upward: usize,
    /// Geometric classification.
    pub classification: usize,
    /// Find-or-create indexes (edge/face lookups).
    pub lookups: usize,
}

impl MeshMemory {
    /// Total bytes.
    pub fn total(&self) -> usize {
        self.bookkeeping
            + self.coords
            + self.downward
            + self.upward
            + self.classification
            + self.lookups
    }
}

impl Mesh {
    /// Estimate the bytes held by this mesh's storage (capacities, not just
    /// live entities — what the allocator actually committed).
    pub fn memory_usage(&self) -> MeshMemory {
        let mut m = MeshMemory::default();
        for d in Dim::ALL {
            let n = self.index_space(d);
            // topo (1) + alive (1) + class (4) per slot.
            m.bookkeeping += n * 2;
            m.classification += n * 4;
            if d == Dim::Vertex {
                m.coords += n * 24;
            }
            if d.as_usize() > 0 {
                // verts + down strides (u32 each), see mesh.rs strides.
                let (vs, ds) = match d {
                    Dim::Edge => (2, 2),
                    Dim::Face => (4, 4),
                    _ => (8, 6),
                };
                m.downward += n * 4 * (vs + ds);
            }
            if d.as_usize() < 3 {
                // InlineVec head per entity plus heap spill.
                m.upward += n * std::mem::size_of::<InlineVec>();
                for e in self.iter(d) {
                    let len = self.up_count(e);
                    if len > pumi_util::inline::INLINE_CAP {
                        m.upward += len * 4;
                    }
                }
            }
        }
        // Hash maps: entries ≈ live edges + faces, ~1.5x overhead factor.
        m.lookups += self.count(Dim::Edge) * (8 + 4) * 3 / 2;
        m.lookups += self.count(Dim::Face) * (16 + 4) * 3 / 2;
        m
    }
}

#[cfg(test)]
mod tests {
    use crate::mesh::Mesh;

    #[test]
    fn empty_mesh_is_small() {
        let m = Mesh::new(2);
        assert_eq!(m.memory_usage().total(), 0);
    }

    #[test]
    fn memory_grows_with_mesh_and_families_fill() {
        // Build with the crate-local API to avoid a meshgen dev-dependency
        // cycle: a fan of triangles.
        let mut m = Mesh::new(2);
        let c = m.add_vertex([0.0; 3], crate::mesh::NO_GEOM).index();
        let ring: Vec<u32> = (0..24)
            .map(|i| {
                let a = i as f64 / 24.0 * std::f64::consts::TAU;
                m.add_vertex([a.cos(), a.sin(), 0.0], crate::mesh::NO_GEOM)
                    .index()
            })
            .collect();
        for i in 0..24 {
            m.add_element(
                crate::topology::Topology::Triangle,
                &[c, ring[i], ring[(i + 1) % 24]],
                crate::mesh::NO_GEOM,
            );
        }
        let mem = m.memory_usage();
        assert!(mem.coords > 0);
        assert!(mem.downward > 0);
        assert!(mem.upward > 0);
        assert!(mem.lookups > 0);
        assert!(mem.total() > 1000);
        // The hub vertex has 24 up-edges: spilled inline vec counted.
        assert!(mem.upward > 25 * std::mem::size_of::<pumi_util::InlineVec>());

        // Doubling the fan roughly doubles memory.
        let t1 = mem.total();
        let ring2: Vec<u32> = (0..24)
            .map(|i| {
                let a = (i as f64 + 0.5) / 24.0 * std::f64::consts::TAU;
                m.add_vertex([2.0 * a.cos(), 2.0 * a.sin(), 0.0], crate::mesh::NO_GEOM)
                    .index()
            })
            .collect();
        for i in 0..24 {
            m.add_element(
                crate::topology::Topology::Triangle,
                &[ring[i], ring2[i], ring[(i + 1) % 24]],
                crate::mesh::NO_GEOM,
            );
        }
        let t2 = m.memory_usage().total();
        assert!(t2 > t1 * 3 / 2, "{t1} -> {t2}");
    }
}
