//! Serial complete mesh representation (§II).
//!
//! The unstructured mesh is "a boundary representation using the base
//! topological entities of vertex (0D), edge (1D), face (2D), region (3D)
//! and their adjacencies". This crate implements that representation with
//! the one-level adjacency storage of FMDB (refs 9, 10), giving O(1)-in-mesh-size
//! adjacency interrogation (the completeness requirement of ref. 2), geometric
//! classification against a [`pumi_geom::Model`], dynamic modification, and
//! the Iterator/Set/Tag utility components.
//!
//! Modules:
//! * [`topology`] — entity topologies (tri/quad/tet/hex/prism/pyramid) and
//!   their canonical boundary templates,
//! * [`mesh`] — storage, creation (find-or-create), deletion,
//! * [`adjacency`] — any-dimension adjacency queries and closures,
//! * [`classify`] — geometric classification derivation,
//! * [`iterators`] — filtered iteration,
//! * [`memory`] — byte-usage accounting (§II-D's memory counter),
//! * [`verify`] — structural invariant checking.

pub mod adjacency;
pub mod classify;
pub mod iterators;
pub mod memory;
pub mod mesh;
pub mod topology;
pub mod verify;

pub use mesh::{Mesh, NO_GEOM};
pub use topology::Topology;
