//! Property tests for the complete mesh representation: adjacency symmetry,
//! closure completeness, and validity under random create/delete sequences.

use proptest::prelude::*;
use pumi_mesh::{Mesh, Topology, NO_GEOM};
use pumi_util::{Dim, MeshEnt};

/// Build a random valid triangle fan mesh from a proptest-driven recipe.
fn fan_mesh(n_outer: usize) -> Mesh {
    let mut m = Mesh::new(2);
    let center = m.add_vertex([0.0, 0.0, 0.0], NO_GEOM).index();
    let ring: Vec<u32> = (0..n_outer)
        .map(|i| {
            let a = i as f64 / n_outer as f64 * std::f64::consts::TAU;
            m.add_vertex([a.cos(), a.sin(), 0.0], NO_GEOM).index()
        })
        .collect();
    for i in 0..n_outer {
        m.add_element(
            Topology::Triangle,
            &[center, ring[i], ring[(i + 1) % n_outer]],
            NO_GEOM,
        );
    }
    m
}

proptest! {
    /// Upward and downward adjacency are inverse relations for every
    /// entity of every dimension.
    #[test]
    fn adjacency_is_symmetric(n in 3usize..12) {
        let m = fan_mesh(n);
        for d in 0..2usize {
            let dim = Dim::from_usize(d);
            let up = Dim::from_usize(d + 1);
            for e in m.iter(dim) {
                for x in m.adjacent(e, up) {
                    prop_assert!(
                        m.adjacent(x, dim).contains(&e),
                        "{x:?} -> {dim} misses {e:?}"
                    );
                }
            }
            for x in m.iter(up) {
                for e in m.adjacent(x, dim) {
                    prop_assert!(m.adjacent(e, up).contains(&x));
                }
            }
        }
    }

    /// closure(e) contains exactly the downward adjacencies of every lower
    /// dimension plus e itself.
    #[test]
    fn closure_is_complete(n in 3usize..12) {
        let m = fan_mesh(n);
        for e in m.elems() {
            let c = m.closure(e);
            prop_assert_eq!(c.len(), 3 + 3 + 1);
            for d in 0..2usize {
                let dim = Dim::from_usize(d);
                for a in m.adjacent(e, dim) {
                    prop_assert!(c.contains(&a), "closure misses {a:?}");
                }
            }
            prop_assert_eq!(*c.last().unwrap(), e);
        }
    }

    /// Random delete/re-add sequences preserve validity and counts return
    /// to the original when everything is recreated.
    #[test]
    fn delete_recreate_roundtrip(n in 4usize..10, kills in proptest::collection::vec(0usize..100, 1..6)) {
        let mut m = fan_mesh(n);
        let v0 = m.count(Dim::Vertex);
        let e0 = m.count(Dim::Edge);
        let f0 = m.count(Dim::Face);
        // Record all triangles, delete a subset, re-add them.
        let tris: Vec<(MeshEnt, Vec<u32>)> = m
            .elems()
            .map(|t| (t, m.verts_of(t).to_vec()))
            .collect();
        let mut deleted: Vec<Vec<u32>> = Vec::new();
        for k in kills {
            let (t, verts) = &tris[k % tris.len()];
            if m.is_live(*t) {
                m.delete(*t);
                deleted.push(verts.clone());
            }
        }
        m.assert_valid();
        for verts in deleted {
            m.add_element(Topology::Triangle, &verts, NO_GEOM);
        }
        m.assert_valid();
        prop_assert_eq!(m.count(Dim::Vertex), v0);
        prop_assert_eq!(m.count(Dim::Edge), e0);
        prop_assert_eq!(m.count(Dim::Face), f0);
    }

    /// Same-dimension neighbour queries are symmetric and irreflexive.
    #[test]
    fn neighbors_symmetric(n in 3usize..12) {
        let m = fan_mesh(n);
        for e in m.elems() {
            let nbrs = m.adjacent(e, Dim::Face);
            prop_assert!(!nbrs.contains(&e), "self in neighbours");
            for x in nbrs {
                prop_assert!(m.adjacent(x, Dim::Face).contains(&e));
            }
        }
    }
}

/// Fixed regression: fan of 3 has fully connected elements via vertices.
#[test]
fn fan3_vertex_bridged_neighbors() {
    let m = fan_mesh(3);
    for e in m.elems() {
        assert_eq!(m.neighbors_via(e, Dim::Vertex).len(), 2);
    }
}
