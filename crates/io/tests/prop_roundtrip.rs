//! Write-on-N / read-on-M roundtrip properties.
//!
//! For meshes of varying topology (structured and jittered, 2D and 3D,
//! with and without ghost layers), write a checkpoint from N parts and
//! restore it on M ∈ {N/2, N, 2N} ranks. The restored mesh must pass
//! distributed verification, its partition-invariant structural hash
//! (entities + tags) must match the written mesh exactly, and field
//! values must roundtrip bit-for-bit.

use pumi_core::overlap::{grow_overlap, GhostOpts};
use pumi_core::verify::assert_dist_valid;
use pumi_core::{distribute, DistMesh, PartMap};
use pumi_field::{DistField, Field, FieldShape};
use pumi_io::{read_checkpoint, struct_hash, write_checkpoint};
use pumi_mesh::Mesh;
use pumi_meshgen::{jitter, tet_box, tri_rect};
use pumi_partition::partition_mesh;
use pumi_pcu::{execute, Comm};
use pumi_util::tag::{TagData, TagKind};
use pumi_util::Dim;
use std::path::{Path, PathBuf};

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pumi_io_prop_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn build_dm(c: &Comm, serial: &Mesh) -> DistMesh {
    let labels = partition_mesh(serial, c.nranks());
    distribute(
        c,
        PartMap::contiguous(c.nranks(), c.nranks()),
        serial,
        &labels,
    )
}

/// Deterministic gid-derived tags on vertices and elements, so copies of a
/// shared entity agree on every part.
fn set_tags(dm: &mut DistMesh) {
    for part in &mut dm.parts {
        let elem_dim = part.mesh.elem_dim();
        let ti = part.mesh.tags_mut().declare("prop:int", TagKind::Int, 2);
        let td = part.mesh.tags_mut().declare("prop:dbl", TagKind::Double, 1);
        let tb = part
            .mesh
            .tags_mut()
            .declare("prop:bytes", TagKind::Bytes, 8);
        let verts: Vec<_> = part.mesh.iter(Dim::Vertex).collect();
        for v in verts {
            let g = part.gid_of(v);
            part.mesh
                .tags_mut()
                .set(ti, v, TagData::Ints(vec![g as i64, (g * 7) as i64]));
            part.mesh
                .tags_mut()
                .set(tb, v, TagData::Bytes(g.to_le_bytes().to_vec()));
        }
        let elems: Vec<_> = part.mesh.iter(Dim::from_usize(elem_dim)).collect();
        for e in elems {
            let g = part.gid_of(e);
            part.mesh
                .tags_mut()
                .set(td, e, TagData::Dbls(vec![g as f64 * 0.5 + 1.0]));
        }
    }
}

fn expected_value(x: [f64; 3]) -> [f64; 2] {
    [x[0] + x[1] + x[2], x[0] * 2.0 - x[2]]
}

fn make_field(dm: &DistMesh) -> DistField {
    dm.parts
        .iter()
        .map(|part| {
            let mut f = Field::new("temp", FieldShape::Linear, 2);
            for v in part.mesh.iter(Dim::Vertex) {
                f.set(v, &expected_value(part.mesh.coords(v)));
            }
            f
        })
        .collect()
}

fn check_field(dm: &DistMesh, fields: &[DistField]) {
    assert_eq!(fields.len(), 1, "one field in the checkpoint");
    let df = &fields[0];
    assert_eq!(df.len(), dm.parts.len());
    for (part, f) in dm.parts.iter().zip(df) {
        assert_eq!(f.name, "temp");
        assert_eq!(f.ncomp, 2);
        for v in part.mesh.iter(Dim::Vertex) {
            let got = f
                .get(v)
                .unwrap_or_else(|| panic!("part {}: vertex {v:?} lost its field value", part.id));
            // Bit-exact: values were stored as raw f64 bits.
            assert_eq!(got, &expected_value(part.mesh.coords(v))[..]);
        }
    }
}

fn roundtrip(name: &str, serial: &Mesh, nwrite: usize, ghosts: bool) {
    let dir = scratch_dir(name);
    let write_out = execute(nwrite, |c| {
        let mut dm = build_dm(c, serial);
        set_tags(&mut dm);
        if ghosts {
            grow_overlap(c, &mut dm, GhostOpts::new().bridge(Dim::Vertex).layers(1));
        }
        let fields = make_field(&dm);
        let stats = write_checkpoint(c, &dm, &[&fields], &dir).expect("write_checkpoint");
        assert_eq!(stats.parts_written, dm.parts.len());
        assert!(stats.bytes_global > 0);
        struct_hash(c, &dm)
    });
    let want = write_out[0];
    assert!(write_out.iter().all(|&h| h == want), "hash is collective");

    for m in [nwrite.div_ceil(2), nwrite, nwrite * 2] {
        let hashes = execute(m, |c| {
            let restored = read_checkpoint(c, &dir).expect("read_checkpoint");
            // read_checkpoint already verified; assert again to be loud.
            assert_dist_valid(c, &restored.dm);
            assert_eq!(restored.stats.nparts_in, nwrite);
            assert_eq!(restored.stats.redistributed, m != nwrite);
            check_field(&restored.dm, &restored.fields);
            struct_hash(c, &restored.dm)
        });
        for h in hashes {
            assert_eq!(h, want, "{name}: hash mismatch restoring on {m} ranks");
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn roundtrip_2d_jittered() {
    let mut serial = tri_rect(12, 9, 3.0, 2.0);
    jitter(&mut serial, 0.2, 7);
    roundtrip("2d", &serial, 4, false);
}

#[test]
fn roundtrip_3d_jittered() {
    let mut serial = tet_box(4, 3, 3, 1.0, 1.0, 1.5);
    jitter(&mut serial, 0.15, 3);
    roundtrip("3d", &serial, 3, false);
}

#[test]
fn roundtrip_with_ghost_layer() {
    let mut serial = tri_rect(10, 8, 2.0, 2.0);
    jitter(&mut serial, 0.1, 11);
    // N = M restores the ghost layer verbatim; N ≠ M drops it (and must
    // still verify and hash identically, since ghosts never contribute).
    roundtrip("ghosted", &serial, 4, true);
}

#[test]
fn roundtrip_single_part() {
    let serial = tri_rect(6, 5, 1.0, 1.0);
    roundtrip("serial", &serial, 1, false);
}

#[test]
fn restored_gid_counters_stay_disjoint() {
    let serial = tri_rect(8, 6, 1.0, 1.0);
    let dir = scratch_dir("gids");
    execute(2, |c| {
        let dm = build_dm(c, &serial);
        write_checkpoint(c, &dm, &[], &dir).expect("write");
    });
    execute(4, |c| {
        let mut restored = read_checkpoint(c, &dir).expect("read");
        // Ids minted after a restore must not collide with checkpointed
        // ones on any part.
        let mut fresh = Vec::new();
        for part in &mut restored.dm.parts {
            for _ in 0..4 {
                fresh.push(part.new_gid());
            }
        }
        for g in fresh {
            for part in &restored.dm.parts {
                for d in 0..=part.mesh.elem_dim() {
                    assert_eq!(
                        part.find_gid(Dim::from_usize(d), g),
                        None,
                        "fresh gid {g} collides on part {}",
                        part.id
                    );
                }
            }
        }
    });
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn file_partition_is_rank_invariant() {
    // §"the file partition is the mesh partition": writing the same mesh
    // from the same parts must produce byte-identical part files no matter
    // which world wrote them — the basis for restart portability.
    let serial = tri_rect(8, 6, 1.0, 1.0);
    let dir_a = scratch_dir("inv_a");
    let dir_b = scratch_dir("inv_b");
    execute(2, |c| {
        let mut dm = build_dm(c, &serial);
        set_tags(&mut dm);
        write_checkpoint(c, &dm, &[], &dir_a).expect("write");
    });
    execute(2, |c| {
        let mut dm = build_dm(c, &serial);
        set_tags(&mut dm);
        write_checkpoint(c, &dm, &[], &dir_b).expect("write");
    });
    for p in 0..2u32 {
        let a = std::fs::read(pumi_io::format::part_file_path(Path::new(&dir_a), p)).unwrap();
        let b = std::fs::read(pumi_io::format::part_file_path(Path::new(&dir_b), p)).unwrap();
        assert_eq!(a, b, "part {p} bytes differ between identical writes");
    }
    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
}
