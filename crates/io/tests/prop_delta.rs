//! Full → delta → restore properties.
//!
//! After a base v2 snapshot, mutate the mesh under dirty tracking (move
//! vertices, rewrite tags and fields, delete and create entities), append
//! delta rounds, and restore on M ∈ {N/2, N, 2N} ranks. The replayed
//! checkpoint must be indistinguishable from a *fresh full snapshot* of
//! the final state: same structural hash (entities, tags, overlaps), same
//! bit-exact field values, on every rank count.

use pumi_core::overlap::{grow_overlap, GhostOpts};
use pumi_core::verify::assert_dist_valid;
use pumi_core::{distribute, DistMesh, PartMap};
use pumi_field::{DistField, Field, FieldShape};
use pumi_io::{
    read_checkpoint, struct_hash, write_checkpoint, write_checkpoint_with, write_delta_checkpoint,
    IoError, WriteOpts,
};
use pumi_mesh::{Mesh, Topology};
use pumi_meshgen::{jitter, tet_box, tri_rect};
use pumi_partition::partition_mesh;
use pumi_pcu::{execute, Comm};
use pumi_util::tag::{TagData, TagKind};
use pumi_util::{Dim, MeshEnt};
use std::path::PathBuf;

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pumi_io_delta_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn build_dm(c: &Comm, serial: &Mesh) -> DistMesh {
    let labels = partition_mesh(serial, c.nranks());
    distribute(
        c,
        PartMap::contiguous(c.nranks(), c.nranks()),
        serial,
        &labels,
    )
}

fn set_tags(dm: &mut DistMesh) {
    for part in &mut dm.parts {
        let elem_dim = part.mesh.elem_dim();
        let td = part.mesh.tags_mut().declare("prop:dbl", TagKind::Double, 1);
        let elems: Vec<_> = part.mesh.iter(Dim::from_usize(elem_dim)).collect();
        for e in elems {
            let g = part.gid_of(e);
            part.mesh
                .tags_mut()
                .set(td, e, TagData::Dbls(vec![g as f64 * 0.5 + 1.0]));
        }
    }
}

fn expected_value(x: [f64; 3]) -> [f64; 2] {
    [x[0] + x[1] + x[2], x[0] * 2.0 - x[2]]
}

fn make_field(dm: &DistMesh) -> DistField {
    dm.parts
        .iter()
        .map(|part| {
            let mut f = Field::new("temp", FieldShape::Linear, 2);
            for v in part.mesh.iter(Dim::Vertex) {
                f.set(v, &expected_value(part.mesh.coords(v)));
            }
            f
        })
        .collect()
}

fn check_field(dm: &DistMesh, fields: &[DistField]) {
    let df = &fields[0];
    for (part, f) in dm.parts.iter().zip(df) {
        for v in part.mesh.iter(Dim::Vertex) {
            let got = f
                .get(v)
                .unwrap_or_else(|| panic!("part {}: vertex {v:?} lost its field value", part.id));
            assert_eq!(got, &expected_value(part.mesh.coords(v))[..]);
        }
    }
}

/// A vertex no other part can see: safe to mutate unilaterally.
fn is_interior(part: &pumi_core::Part, v: MeshEnt) -> bool {
    !part.is_shared(v) && !part.is_ghost(v)
}

/// Delete an entity and any downward entities it leaves bounding nothing,
/// the way cavity operators do — migration (and thus N→M restore) requires
/// a mesh without dangling intermediate entities.
fn delete_with_closure(part: &mut pumi_core::Part, e: MeshEnt) {
    let down = if e.dim() == Dim::Vertex {
        Vec::new()
    } else {
        part.mesh.down_ents(e)
    };
    part.delete_entity(e);
    for sub in down {
        if part.mesh.is_live(sub) && part.mesh.up_count(sub) == 0 {
            delete_with_closure(part, sub);
        }
    }
}

/// Deterministic per-part mutations. `round` selects disjoint target sets
/// so consecutive rounds touch different entities. `structural` also
/// deletes one deep-interior element and (round 2) grows a new vertex +
/// element, exercising the Deleted section and entity upserts.
fn mutate_round(dm: &mut DistMesh, fields: &mut DistField, round: usize, structural: bool) {
    for (part, f) in dm.parts.iter_mut().zip(fields.iter_mut()) {
        let elem_dim = part.mesh.elem_dim();
        let d_elem = Dim::from_usize(elem_dim);

        // Move every 4th interior vertex and refresh its field value.
        let targets: Vec<MeshEnt> = part
            .mesh
            .iter(Dim::Vertex)
            .filter(|&v| is_interior(part, v))
            .enumerate()
            .filter(|(i, _)| i % 4 == round % 4)
            .map(|(_, v)| v)
            .collect();
        for v in targets {
            let mut x = part.mesh.coords(v);
            x[2] += 0.01 * (round as f64 + 1.0);
            part.mesh.set_coords(v, x);
            f.set(v, &expected_value(x));
            part.mark_dirty(v);
        }

        // Rewrite the element tag on every 3rd non-ghost element.
        let tid = part.mesh.tags().find("prop:dbl").expect("tag declared");
        let elems: Vec<MeshEnt> = part
            .mesh
            .iter(d_elem)
            .filter(|&e| !part.is_ghost(e))
            .enumerate()
            .filter(|(i, _)| i % 3 == round % 3)
            .map(|(_, e)| e)
            .collect();
        for e in elems {
            let g = part.gid_of(e);
            part.mesh
                .tags_mut()
                .set(tid, e, TagData::Dbls(vec![g as f64 * -2.0 + round as f64]));
            part.mark_dirty(e);
        }

        if !structural {
            continue;
        }
        // Delete one element whose vertices no other part references.
        let victim = part.mesh.iter(d_elem).find(|&e| {
            !part.is_ghost(e)
                && part
                    .mesh
                    .verts_of(e)
                    .iter()
                    .all(|&v| is_interior(part, MeshEnt::vertex(v)))
        });
        if let Some(e) = victim {
            let vs: Vec<u32> = part.mesh.verts_of(e).to_vec();
            let class = part.mesh.class_of(e);
            let mut x = [0.0; 3];
            for &v in &vs {
                let c = part.mesh.coords(MeshEnt::vertex(v));
                for (xi, ci) in x.iter_mut().zip(c) {
                    *xi += ci / vs.len() as f64;
                }
            }
            delete_with_closure(part, e);
            if round >= 2 {
                // Regrow in the victim's cavity: a fresh apex vertex over
                // the centroid, connected across the victim's first side so
                // every side goes back to bounding exactly two elements —
                // fresh gids, new entity upserts, and a manifold result.
                x[2] += 0.3;
                let gv = part.new_gid();
                let nv = part.add_vertex(x, class, gv);
                f.set(nv, &expected_value(x));
                let topo = if elem_dim == 2 {
                    Topology::Triangle
                } else {
                    Topology::Tet
                };
                let mut conn: Vec<u32> = vs[..elem_dim].to_vec();
                conn.push(nv.index());
                let ge = part.new_gid();
                let ne = part.add_entity(topo, &conn, class, ge);
                let tid = part.mesh.tags().find("prop:dbl").expect("tag");
                part.mesh
                    .tags_mut()
                    .set(tid, ne, TagData::Dbls(vec![ge as f64 * 0.5 + 1.0]));
            }
        }
    }
}

/// Write base + `rounds` deltas into `dir_delta` and a fresh full snapshot
/// of the final state into `dir_full`; restore both on M ∈ {N/2, N, 2N}
/// and demand identical structural hashes and bit-exact fields.
fn delta_roundtrip(name: &str, serial: &Mesh, nwrite: usize, rounds: usize, ghosts: bool) {
    let dir_delta = scratch_dir(&format!("{name}_d"));
    let dir_full = scratch_dir(&format!("{name}_f"));
    let structural = !ghosts;
    let write_out = execute(nwrite, |c| {
        let mut dm = build_dm(c, serial);
        set_tags(&mut dm);
        if ghosts {
            grow_overlap(c, &mut dm, GhostOpts::new().bridge(Dim::Vertex).layers(1));
        }
        let mut fields = make_field(&dm);
        write_checkpoint(c, &dm, &[&fields], &dir_delta).expect("base write");
        dm.start_dirty_tracking();
        for round in 1..=rounds {
            mutate_round(&mut dm, &mut fields, round, structural);
            let stats =
                write_delta_checkpoint(c, &mut dm, &[&fields], &dir_delta).expect("delta write");
            assert_eq!(stats.parts_written, dm.parts.len());
        }
        write_checkpoint(c, &dm, &[&fields], &dir_full).expect("fresh full write");
        struct_hash(c, &dm)
    });
    let want = write_out[0];
    assert!(write_out.iter().all(|&h| h == want), "hash is collective");

    for m in [nwrite.div_ceil(2), nwrite, nwrite * 2] {
        for (dir, label) in [(&dir_delta, "base+delta"), (&dir_full, "fresh full")] {
            let hashes = execute(m, |c| {
                let restored = read_checkpoint(c, dir).expect("restore");
                assert_dist_valid(c, &restored.dm);
                check_field(&restored.dm, &restored.fields);
                struct_hash(c, &restored.dm)
            });
            for h in hashes {
                assert_eq!(h, want, "{name}: {label} hash mismatch on {m} ranks");
            }
        }
    }
    let _ = std::fs::remove_dir_all(&dir_delta);
    let _ = std::fs::remove_dir_all(&dir_full);
}

#[test]
fn delta_roundtrip_2d_structural() {
    let mut serial = tri_rect(12, 9, 3.0, 2.0);
    jitter(&mut serial, 0.2, 7);
    delta_roundtrip("2d", &serial, 4, 2, false);
}

#[test]
fn delta_roundtrip_3d_structural() {
    let mut serial = tet_box(4, 3, 3, 1.0, 1.0, 1.5);
    jitter(&mut serial, 0.15, 3);
    delta_roundtrip("3d", &serial, 3, 2, false);
}

#[test]
fn delta_roundtrip_with_ghost_layer() {
    let mut serial = tri_rect(10, 8, 2.0, 2.0);
    jitter(&mut serial, 0.1, 11);
    delta_roundtrip("ghosted", &serial, 4, 2, true);
}

#[test]
fn empty_delta_round_is_a_noop() {
    let serial = tri_rect(8, 6, 1.0, 1.0);
    let dir = scratch_dir("noop");
    let hashes = execute(2, |c| {
        let mut dm = build_dm(c, &serial);
        write_checkpoint(c, &dm, &[], &dir).expect("base");
        dm.start_dirty_tracking();
        // Nothing touched: the delta round carries empty sections.
        write_delta_checkpoint(c, &mut dm, &[], &dir).expect("empty delta");
        struct_hash(c, &dm)
    });
    let restored = execute(2, |c| {
        let r = read_checkpoint(c, &dir).expect("restore");
        struct_hash(c, &r.dm)
    });
    assert_eq!(hashes[0], restored[0]);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn delta_after_repartition_is_refused() {
    let serial = tri_rect(8, 6, 1.0, 1.0);
    let dir = scratch_dir("repart");
    execute(2, |c| {
        let dm = build_dm(c, &serial);
        write_checkpoint(c, &dm, &[], &dir).expect("base from 2 parts");
    });
    execute(4, |c| {
        // Restore onto 4 ranks, then try to delta against the 2-part base:
        // the partition no longer matches and every rank must refuse.
        let mut restored = read_checkpoint(c, &dir).expect("restore");
        restored.dm.start_dirty_tracking();
        let err = write_delta_checkpoint(c, &mut restored.dm, &[], &dir)
            .expect_err("partition mismatch must refuse");
        assert!(
            matches!(err, IoError::Manifest { .. } | IoError::PeerFailed { .. }),
            "typed refusal, got {err:?}"
        );
    });
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn v1_checkpoints_still_restore() {
    // Version-gated read path: a v1 (flat, uncompressed) checkpoint written
    // through the same API restores bit-for-bit on any rank count.
    let mut serial = tri_rect(9, 7, 1.0, 1.0);
    jitter(&mut serial, 0.1, 5);
    let dir = scratch_dir("v1compat");
    let write_out = execute(2, |c| {
        let mut dm = build_dm(c, &serial);
        set_tags(&mut dm);
        let fields = make_field(&dm);
        let opts = WriteOpts {
            version: 1,
            ..WriteOpts::default()
        };
        write_checkpoint_with(c, &dm, &[&fields], &dir, &opts).expect("v1 write");
        struct_hash(c, &dm)
    });
    for m in [1, 2, 4] {
        let hashes = execute(m, |c| {
            let restored = read_checkpoint(c, &dir).expect("v1 restore");
            assert_dist_valid(c, &restored.dm);
            check_field(&restored.dm, &restored.fields);
            struct_hash(c, &restored.dm)
        });
        for h in hashes {
            assert_eq!(h, write_out[0], "v1 restore hash mismatch on {m} ranks");
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}
