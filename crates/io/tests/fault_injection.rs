//! Corruption drills: every damaged checkpoint must surface as a typed
//! [`IoError`] naming the damaged part (and section where applicable) —
//! never a panic, and never a deadlock (peers exit with `PeerFailed`).

use pumi_core::{distribute, PartMap};
use pumi_io::format::{find_section, parse_part_header, parse_part_header_v2, part_file_path};
use pumi_io::{read_checkpoint, write_checkpoint_with, IoError, Section, WriteOpts};
use pumi_meshgen::tri_rect;
use pumi_partition::partition_mesh;
use pumi_pcu::execute;
use std::path::PathBuf;

fn write_small_with(name: &str, opts: WriteOpts) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pumi_io_fault_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let serial = tri_rect(8, 6, 1.0, 1.0);
    execute(2, |c| {
        let labels = partition_mesh(&serial, 2);
        let dm = distribute(c, PartMap::contiguous(2, 2), &serial, &labels);
        write_checkpoint_with(c, &dm, &[], &dir, &opts).expect("write");
    });
    dir
}

/// A v2 (default-format) checkpoint.
fn write_small(name: &str) -> PathBuf {
    write_small_with(name, WriteOpts::default())
}

/// A v1 (flat, uncompressed) checkpoint — the drills below that reseal or
/// cut v1 byte layouts need it explicitly.
fn write_small_v1(name: &str) -> PathBuf {
    write_small_with(
        name,
        WriteOpts {
            version: 1,
            ..WriteOpts::default()
        },
    )
}

/// Read the checkpoint on 2 ranks; every rank must get an `Err`.
fn read_errors(dir: &std::path::Path) -> Vec<IoError> {
    execute(2, |c| {
        read_checkpoint(c, dir)
            .map(|_| ())
            .expect_err("corrupt checkpoint must not restore")
    })
}

#[test]
fn flipped_payload_byte_names_part_and_section() {
    let dir = write_small_v1("flip");
    // Corrupt the middle of part 1's entities payload.
    let path = part_file_path(&dir, 1);
    let mut data = std::fs::read(&path).expect("read part file");
    let header = parse_part_header(1, &data).expect("intact header");
    let entry = find_section(&header, Section::Entities).expect("entities section");
    data[(entry.offset + entry.len / 2) as usize] ^= 0x40;
    std::fs::write(&path, &data).expect("write corrupted file");

    let errs = read_errors(&dir);
    assert!(
        errs.iter().any(|e| matches!(
            e,
            IoError::BadChecksum {
                part: 1,
                section: Section::Entities
            }
        )),
        "expected BadChecksum(part 1, entities), got: {errs:?}"
    );
    // The message identifies the damaged file for the operator.
    let msg = errs
        .iter()
        .find(|e| matches!(e, IoError::BadChecksum { .. }))
        .expect("typed checksum error")
        .to_string();
    assert!(msg.contains("part 1") && msg.contains("entities"), "{msg}");
    // The other rank exits collectively instead of deadlocking.
    assert!(
        errs.iter().any(|e| matches!(e, IoError::PeerFailed { .. })),
        "peer should report PeerFailed, got: {errs:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A byte that survives the CRC but decodes to an out-of-range enum (here a
/// topology code) must surface as a typed `Decode` error, not a panic: the
/// section checksum is repaired after the flip so only the enum guard can
/// catch it.
#[test]
fn flipped_enum_byte_is_typed_decode_error() {
    let dir = write_small_v1("enum");
    let path = part_file_path(&dir, 1);
    let mut data = std::fs::read(&path).expect("read part file");
    let header = parse_part_header(1, &data).expect("intact header");
    let i = header
        .sections
        .iter()
        .position(|e| e.section == Section::Entities)
        .expect("entities section");
    let entry = header.sections[i];
    // First vertex record: [n u32][gid u64][topo u8]... — flip the topology
    // code to an undefined value.
    let topo_at = entry.offset as usize + 12;
    data[topo_at] = 0xFF;
    // Re-seal both checksums so the corruption reaches the decoder.
    let payload_crc = pumi_io::crc::crc32(&data[entry.offset as usize..][..entry.len as usize]);
    let table_at = 28 + 21 * i + 17; // crc32 field of table row i
    data[table_at..table_at + 4].copy_from_slice(&payload_crc.to_le_bytes());
    let table_end = 28 + 21 * header.sections.len();
    let hcrc = pumi_io::crc::crc32(&data[..table_end]);
    data[table_end..table_end + 4].copy_from_slice(&hcrc.to_le_bytes());
    std::fs::write(&path, &data).expect("write corrupted file");

    let errs = read_errors(&dir);
    let detail = errs
        .iter()
        .find_map(|e| match e {
            IoError::Decode {
                part: 1,
                section: Section::Entities,
                detail,
            } => Some(detail.clone()),
            _ => None,
        })
        .unwrap_or_else(|| panic!("expected Decode(part 1, entities), got: {errs:?}"));
    assert!(
        detail.contains("topology"),
        "detail names the enum: {detail}"
    );
    assert!(
        errs.iter().any(|e| matches!(e, IoError::PeerFailed { .. })),
        "peer should report PeerFailed, got: {errs:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn truncated_part_file_is_typed() {
    let dir = write_small_v1("trunc");
    let path = part_file_path(&dir, 0);
    let data = std::fs::read(&path).expect("read part file");
    std::fs::write(&path, &data[..data.len() - 9]).expect("truncate");

    let errs = read_errors(&dir);
    assert!(
        errs.iter()
            .any(|e| matches!(e, IoError::Truncated { part: 0, .. })),
        "expected Truncated(part 0), got: {errs:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Cutting the tail off a v2 part file destroys the end-of-file section
/// table; the reader must refuse at the header stage, not chase offsets.
#[test]
fn truncated_v2_tail_is_typed_header_error() {
    let dir = write_small("v2trunc");
    let path = part_file_path(&dir, 0);
    let data = std::fs::read(&path).expect("read part file");
    std::fs::write(&path, &data[..data.len() - 9]).expect("truncate");

    let errs = read_errors(&dir);
    assert!(
        errs.iter()
            .any(|e| matches!(e, IoError::Header { part: 0, .. })),
        "expected Header(part 0) for the lost table, got: {errs:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Locate the first chunk of a section in a v2 part file: returns the
/// absolute offset of its 12-byte chunk header.
fn first_chunk_at(data: &[u8], part: u32, section: Section) -> usize {
    let h = parse_part_header_v2(part, data).expect("intact v2 header");
    h.find(section).expect("section present").offset as usize
}

/// Flipping one bit inside a compressed chunk payload must surface as
/// `BadChunk` naming part, section, and chunk — before the decompressor
/// ever sees the damage.
#[test]
fn flipped_compressed_chunk_payload_is_bad_chunk() {
    let dir = write_small("v2flip");
    let path = part_file_path(&dir, 1);
    let mut data = std::fs::read(&path).expect("read part file");
    let at = first_chunk_at(&data, 1, Section::Entities);
    data[at + 12 + 7] ^= 0x20; // inside the stored payload
    std::fs::write(&path, &data).expect("write corrupted file");

    let errs = read_errors(&dir);
    let detail = errs
        .iter()
        .find_map(|e| match e {
            IoError::BadChunk {
                part: 1,
                section: Section::Entities,
                chunk: 0,
                detail,
            } => Some(detail.clone()),
            _ => None,
        })
        .unwrap_or_else(|| panic!("expected BadChunk(part 1, entities, chunk 0), got: {errs:?}"));
    assert!(detail.contains("CRC"), "detail names the check: {detail}");
    let msg = errs
        .iter()
        .find(|e| matches!(e, IoError::BadChunk { .. }))
        .expect("typed chunk error")
        .to_string();
    assert!(
        msg.contains("part 1") && msg.contains("entities") && msg.contains("chunk 0"),
        "{msg}"
    );
    assert!(
        errs.iter().any(|e| matches!(e, IoError::PeerFailed { .. })),
        "peer should report PeerFailed, got: {errs:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A damaged decompressed-length header passes the payload CRC (which
/// deliberately does not cover it) and must be caught by the
/// decompressed-length comparison instead.
#[test]
fn wrong_chunk_raw_len_is_bad_chunk() {
    let dir = write_small("v2rawlen");
    let path = part_file_path(&dir, 0);
    let mut data = std::fs::read(&path).expect("read part file");
    let at = first_chunk_at(&data, 0, Section::Entities);
    let raw_len = u32::from_le_bytes(data[at..at + 4].try_into().unwrap());
    data[at..at + 4].copy_from_slice(&(raw_len - 3).to_le_bytes());
    std::fs::write(&path, &data).expect("write corrupted file");

    let errs = read_errors(&dir);
    assert!(
        errs.iter().any(|e| matches!(
            e,
            IoError::BadChunk {
                part: 0,
                section: Section::Entities,
                chunk: 0,
                ..
            }
        )),
        "expected BadChunk(part 0, entities, chunk 0), got: {errs:?}"
    );
    assert!(
        errs.iter().any(|e| matches!(e, IoError::PeerFailed { .. })),
        "peer should report PeerFailed, got: {errs:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A chunk whose stored length reaches past its section's disk extent is a
/// truncated chunk; the reader must stop at the section bound with a typed
/// error instead of reading into the next section.
#[test]
fn truncated_chunk_is_bad_chunk() {
    let dir = write_small("v2chunktrunc");
    let path = part_file_path(&dir, 1);
    let mut data = std::fs::read(&path).expect("read part file");
    let at = first_chunk_at(&data, 1, Section::Tags);
    data[at + 4..at + 8].copy_from_slice(&0xFFFF_FF00u32.to_le_bytes()); // comp_len
    std::fs::write(&path, &data).expect("write corrupted file");

    let errs = read_errors(&dir);
    let detail = errs
        .iter()
        .find_map(|e| match e {
            IoError::BadChunk {
                part: 1,
                section: Section::Tags,
                chunk: 0,
                detail,
            } => Some(detail.clone()),
            _ => None,
        })
        .unwrap_or_else(|| panic!("expected BadChunk(part 1, tags, chunk 0), got: {errs:?}"));
    assert!(detail.contains("truncated"), "{detail}");
    assert!(
        errs.iter().any(|e| matches!(e, IoError::PeerFailed { .. })),
        "peer should report PeerFailed, got: {errs:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn damaged_header_is_typed() {
    let dir = write_small("header");
    let path = part_file_path(&dir, 1);
    let mut data = std::fs::read(&path).expect("read part file");
    data[0] = b'X'; // break the magic
    std::fs::write(&path, &data).expect("write");

    let errs = read_errors(&dir);
    assert!(
        errs.iter()
            .any(|e| matches!(e, IoError::Header { part: 1, .. })),
        "expected Header(part 1), got: {errs:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn flipped_header_field_is_typed() {
    let dir = write_small("hcrc");
    let path = part_file_path(&dir, 0);
    let mut data = std::fs::read(&path).expect("read part file");
    data[16] ^= 0x01; // gid counter, covered by the header CRC
    std::fs::write(&path, &data).expect("write");

    let errs = read_errors(&dir);
    assert!(
        errs.iter()
            .any(|e| matches!(e, IoError::Header { part: 0, .. })),
        "expected Header(part 0), got: {errs:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn missing_part_file_is_typed() {
    let dir = write_small("missing");
    std::fs::remove_file(part_file_path(&dir, 1)).expect("remove part file");
    let errs = read_errors(&dir);
    assert!(
        errs.iter().any(|e| matches!(e, IoError::Io { .. })),
        "expected Io for the missing file, got: {errs:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn missing_manifest_fails_on_every_rank() {
    let dir = write_small("manifest");
    std::fs::remove_file(dir.join(pumi_io::MANIFEST_FILE)).expect("remove manifest");
    let errs = read_errors(&dir);
    assert_eq!(errs.len(), 2);
    for e in &errs {
        assert!(
            matches!(e, IoError::Manifest { .. }),
            "every rank reports Manifest, got: {e:?}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_manifest_body_fails_cleanly() {
    let dir = write_small("mbody");
    let path = dir.join(pumi_io::MANIFEST_FILE);
    let mut data = std::fs::read(&path).expect("read manifest");
    let n = data.len();
    data[n - 6] ^= 0x80; // inside the body, breaks the body CRC
    std::fs::write(&path, &data).expect("write");
    let errs = read_errors(&dir);
    for e in &errs {
        assert!(
            matches!(e, IoError::Manifest { .. }),
            "expected Manifest, got: {e:?}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
