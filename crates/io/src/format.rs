//! The `.pmb` (PUMI mesh, binary) on-disk layout.
//!
//! A checkpoint is a directory: one `manifest.pmb` plus one
//! `part_<id>.pmb` per part. All integers are little-endian.
//!
//! Part file:
//!
//! ```text
//! offset  size  field
//! 0       4     magic "PMBP"
//! 4       4     format version (u32)
//! 8       4     part id (u32)
//! 12      4     element dimension (u32)
//! 16      8     fresh-gid counter (u64)
//! 24      4     section count n (u32)
//! 28      21*n  section table: (kind u8, offset u64, len u64, crc32 u32)
//! 28+21n  4     crc32 of bytes [0, 28+21n)
//! ...           section payloads (offsets are absolute)
//! ```
//!
//! The header + table carry their own CRC so a damaged table is detected
//! before any offset is trusted; each payload carries a CRC checked before
//! decoding. Section payloads are [`pumi_pcu::MsgWriter`] streams — the same
//! encoding migration uses on the wire.
//!
//! Version 2 part file (streaming, compressed):
//!
//! ```text
//! offset  size  field
//! 0       4     magic "PMBP"
//! 4       4     format version = 2 (u32)
//! 8       4     part id (u32)
//! 12      4     element dimension (u32)
//! 16      8     fresh-gid counter (u64)
//! 24      4     flags (u32; bit 0 = delta checkpoint)
//! 28      8     table offset (u64, absolute)
//! 36      4     table length (u32, includes its CRC)
//! 40      4     crc32 of bytes [0, 40)
//! 44      ...   section chunk streams (see `chunk` module)
//! table   4     section count n (u32)
//!         29*n  entries: kind u8, offset u64, disk_len u64, raw_len u64,
//!               nchunks u32
//!         4     crc32 of the table bytes before it
//! ```
//!
//! The v2 writer streams chunks as encoders produce them, records where
//! each section landed, appends the table at the end, and seeks back to
//! rewrite the 44-byte header — so a part's serialized image is never held
//! in memory. Section *content* encoding is identical to v1; only the
//! payload container (chunked + LZ4 + per-chunk CRC) differs.
//!
//! Manifest file:
//!
//! ```text
//! magic "PMBM" | version u32 | body_len u32 | body | crc32(body)
//! ```
//!
//! where `body` holds part count, element dimension, writer world size,
//! global owned entity counts, a ghost flag, and the field descriptors.

use crate::crc::crc32;
use crate::error::{IoError, Section};
use bytes::Bytes;
use pumi_field::FieldShape;
use pumi_pcu::{MsgReader, MsgWriter};
use pumi_util::PartId;
use std::path::{Path, PathBuf};

/// Magic bytes opening every part file.
pub const PART_MAGIC: [u8; 4] = *b"PMBP";
/// Magic bytes opening the manifest.
pub const MANIFEST_MAGIC: [u8; 4] = *b"PMBM";
/// The original (uncompressed, in-memory) format version.
pub const FORMAT_VERSION: u32 = 1;
/// The chunked/compressed streaming format version.
pub const FORMAT_VERSION_V2: u32 = 2;
/// The manifest file name inside a checkpoint directory.
pub const MANIFEST_FILE: &str = "manifest.pmb";
/// v2 header flag bit: this part file is a *delta* against a base snapshot.
pub const FLAG_DELTA: u32 = 1;

const HEADER_FIXED: usize = 28;
const TABLE_ENTRY: usize = 21;
/// Fixed v2 header length (the trailing 4 bytes are its CRC).
pub const HEADER_V2_LEN: usize = 44;
const TABLE_ENTRY_V2: usize = 29;

/// The file name of a part's data inside a checkpoint directory.
pub fn part_file_name(part: PartId) -> String {
    format!("part_{part:05}.pmb")
}

/// The path of a part's data inside a checkpoint directory.
pub fn part_file_path(dir: &Path, part: PartId) -> PathBuf {
    dir.join(part_file_name(part))
}

/// One row of a parsed section table.
#[derive(Debug, Clone, Copy)]
pub struct SectionEntry {
    /// Which section this is.
    pub section: Section,
    /// Absolute byte offset of the payload.
    pub offset: u64,
    /// Payload length in bytes.
    pub len: u64,
    /// CRC-32 of the payload.
    pub crc: u32,
}

/// A parsed part-file header.
#[derive(Debug)]
pub struct PartHeader {
    /// The part id recorded in the file.
    pub part: PartId,
    /// Element dimension of the part's mesh.
    pub elem_dim: u32,
    /// The part's fresh-gid counter at write time.
    pub gid_counter: u64,
    /// The section table, in file order.
    pub sections: Vec<SectionEntry>,
}

/// Assemble a complete part file from section payloads.
pub fn encode_part_file(
    part: PartId,
    elem_dim: u32,
    gid_counter: u64,
    sections: &[(Section, Bytes)],
) -> Vec<u8> {
    let table_len = HEADER_FIXED + TABLE_ENTRY * sections.len() + 4;
    let total: usize = table_len + sections.iter().map(|(_, b)| b.len()).sum::<usize>();
    let mut out = Vec::with_capacity(total);
    out.extend_from_slice(&PART_MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&part.to_le_bytes());
    out.extend_from_slice(&elem_dim.to_le_bytes());
    out.extend_from_slice(&gid_counter.to_le_bytes());
    out.extend_from_slice(&(sections.len() as u32).to_le_bytes());
    let mut offset = table_len as u64;
    for (s, payload) in sections {
        out.push(s.to_u8());
        out.extend_from_slice(&offset.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&crc32(payload).to_le_bytes());
        offset += payload.len() as u64;
    }
    let hcrc = crc32(&out);
    out.extend_from_slice(&hcrc.to_le_bytes());
    for (_, payload) in sections {
        out.extend_from_slice(payload);
    }
    debug_assert_eq!(out.len(), total);
    out
}

fn get_u32(data: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(data[at..at + 4].try_into().expect("bounds checked"))
}

fn get_u64(data: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(data[at..at + 8].try_into().expect("bounds checked"))
}

/// Parse and checksum-verify a part file's header and section table.
/// `part` is the id implied by the file name; the header must agree.
pub fn parse_part_header(part: PartId, data: &[u8]) -> Result<PartHeader, IoError> {
    let header_err = |detail: String| IoError::Header { part, detail };
    if data.len() < HEADER_FIXED + 4 {
        return Err(header_err(format!(
            "file too short for a header: {} bytes",
            data.len()
        )));
    }
    if data[0..4] != PART_MAGIC {
        return Err(header_err("bad magic (not a .pmb part file)".into()));
    }
    let version = get_u32(data, 4);
    if version != FORMAT_VERSION {
        return Err(header_err(format!(
            "unsupported format version {version} (reader supports {FORMAT_VERSION})"
        )));
    }
    let file_part = get_u32(data, 8);
    if file_part != part {
        return Err(header_err(format!(
            "header names part {file_part}, expected {part}"
        )));
    }
    let elem_dim = get_u32(data, 12);
    let gid_counter = get_u64(data, 16);
    let nsections = get_u32(data, 24) as usize;
    let table_end = HEADER_FIXED + TABLE_ENTRY * nsections;
    if data.len() < table_end + 4 {
        return Err(header_err(format!(
            "section table truncated: {} sections need {} bytes, have {}",
            nsections,
            table_end + 4,
            data.len()
        )));
    }
    let stored = get_u32(data, table_end);
    let actual = crc32(&data[..table_end]);
    if stored != actual {
        return Err(header_err(format!(
            "header CRC mismatch: stored {stored:#010x}, computed {actual:#010x}"
        )));
    }
    let mut sections = Vec::with_capacity(nsections);
    for i in 0..nsections {
        let at = HEADER_FIXED + TABLE_ENTRY * i;
        let section = Section::from_u8(data[at])
            .ok_or_else(|| header_err(format!("unknown section code {}", data[at])))?;
        sections.push(SectionEntry {
            section,
            offset: get_u64(data, at + 1),
            len: get_u64(data, at + 9),
            crc: get_u32(data, at + 17),
        });
    }
    Ok(PartHeader {
        part,
        elem_dim,
        gid_counter,
        sections,
    })
}

/// Slice out a section payload, verifying bounds and checksum.
pub fn section_payload<'a>(
    part: PartId,
    data: &'a [u8],
    entry: &SectionEntry,
) -> Result<&'a [u8], IoError> {
    let end = entry.offset.saturating_add(entry.len);
    if end > data.len() as u64 {
        return Err(IoError::Truncated {
            part,
            section: entry.section,
            needed: end,
            have: data.len() as u64,
        });
    }
    let payload = &data[entry.offset as usize..end as usize];
    if crc32(payload) != entry.crc {
        return Err(IoError::BadChecksum {
            part,
            section: entry.section,
        });
    }
    Ok(payload)
}

/// Find a section's table entry.
pub fn find_section(header: &PartHeader, section: Section) -> Option<SectionEntry> {
    header
        .sections
        .iter()
        .copied()
        .find(|e| e.section == section)
}

/// One row of a parsed v2 section table: a chunked, compressed payload.
#[derive(Debug, Clone, Copy)]
pub struct SectionEntryV2 {
    /// Which section this is.
    pub section: Section,
    /// Absolute byte offset of the first chunk.
    pub offset: u64,
    /// Bytes the chunk stream occupies on disk (headers + payloads).
    pub disk_len: u64,
    /// Total decompressed section length.
    pub raw_len: u64,
    /// Number of chunks.
    pub nchunks: u32,
}

/// A parsed v2 part-file header + table.
#[derive(Debug)]
pub struct PartHeaderV2 {
    /// The part id recorded in the file.
    pub part: PartId,
    /// Element dimension of the part's mesh.
    pub elem_dim: u32,
    /// The part's fresh-gid counter at write time.
    pub gid_counter: u64,
    /// Header flags ([`FLAG_DELTA`]).
    pub flags: u32,
    /// The section table, in file order.
    pub sections: Vec<SectionEntryV2>,
}

impl PartHeaderV2 {
    /// Whether this part file is a delta against a base snapshot.
    pub fn is_delta(&self) -> bool {
        self.flags & FLAG_DELTA != 0
    }

    /// Find a section's table entry.
    pub fn find(&self, section: Section) -> Option<SectionEntryV2> {
        self.sections.iter().copied().find(|e| e.section == section)
    }
}

/// Encode the fixed 44-byte v2 header. The streaming writer calls this
/// twice: once with zeroed `table_offset`/`table_len` to reserve the bytes,
/// and again (seeking back) once the table's landing spot is known.
pub fn encode_header_v2(
    part: PartId,
    elem_dim: u32,
    gid_counter: u64,
    flags: u32,
    table_offset: u64,
    table_len: u32,
) -> [u8; HEADER_V2_LEN] {
    let mut h = [0u8; HEADER_V2_LEN];
    h[0..4].copy_from_slice(&PART_MAGIC);
    h[4..8].copy_from_slice(&FORMAT_VERSION_V2.to_le_bytes());
    h[8..12].copy_from_slice(&part.to_le_bytes());
    h[12..16].copy_from_slice(&elem_dim.to_le_bytes());
    h[16..24].copy_from_slice(&gid_counter.to_le_bytes());
    h[24..28].copy_from_slice(&flags.to_le_bytes());
    h[28..36].copy_from_slice(&table_offset.to_le_bytes());
    h[36..40].copy_from_slice(&table_len.to_le_bytes());
    let crc = crc32(&h[..40]);
    h[40..44].copy_from_slice(&crc.to_le_bytes());
    h
}

/// Encode a v2 section table (count, entries, trailing CRC).
pub fn encode_table_v2(entries: &[SectionEntryV2]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + TABLE_ENTRY_V2 * entries.len() + 4);
    out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
    for e in entries {
        out.push(e.section.to_u8());
        out.extend_from_slice(&e.offset.to_le_bytes());
        out.extend_from_slice(&e.disk_len.to_le_bytes());
        out.extend_from_slice(&e.raw_len.to_le_bytes());
        out.extend_from_slice(&e.nchunks.to_le_bytes());
    }
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// The format version a part file claims (checked before full parsing so
/// the reader can dispatch v1 vs v2).
pub fn peek_part_version(part: PartId, data: &[u8]) -> Result<u32, IoError> {
    if data.len() < 8 {
        return Err(IoError::Header {
            part,
            detail: format!("file too short for a header: {} bytes", data.len()),
        });
    }
    if data[0..4] != PART_MAGIC {
        return Err(IoError::Header {
            part,
            detail: "bad magic (not a .pmb part file)".into(),
        });
    }
    Ok(get_u32(data, 4))
}

/// Parse and checksum-verify a v2 part file's header and section table.
pub fn parse_part_header_v2(part: PartId, data: &[u8]) -> Result<PartHeaderV2, IoError> {
    let header_err = |detail: String| IoError::Header { part, detail };
    if data.len() < HEADER_V2_LEN {
        return Err(header_err(format!(
            "file too short for a v2 header: {} bytes",
            data.len()
        )));
    }
    if data[0..4] != PART_MAGIC {
        return Err(header_err("bad magic (not a .pmb part file)".into()));
    }
    let version = get_u32(data, 4);
    if version != FORMAT_VERSION_V2 {
        return Err(header_err(format!(
            "not a v2 part file (version {version})"
        )));
    }
    let stored = get_u32(data, 40);
    let actual = crc32(&data[..40]);
    if stored != actual {
        return Err(header_err(format!(
            "header CRC mismatch: stored {stored:#010x}, computed {actual:#010x}"
        )));
    }
    let file_part = get_u32(data, 8);
    if file_part != part {
        return Err(header_err(format!(
            "header names part {file_part}, expected {part}"
        )));
    }
    let elem_dim = get_u32(data, 12);
    let gid_counter = get_u64(data, 16);
    let flags = get_u32(data, 24);
    let table_offset = get_u64(data, 28) as usize;
    let table_len = get_u32(data, 36) as usize;
    if table_len < 8 || table_offset.checked_add(table_len).is_none() {
        return Err(header_err(format!("nonsense table length {table_len}")));
    }
    if table_offset + table_len > data.len() {
        return Err(header_err(format!(
            "section table truncated: table at {table_offset}+{table_len} exceeds {} file bytes",
            data.len()
        )));
    }
    let table = &data[table_offset..table_offset + table_len];
    let stored = get_u32(table, table_len - 4);
    let actual = crc32(&table[..table_len - 4]);
    if stored != actual {
        return Err(header_err(format!(
            "section table CRC mismatch: stored {stored:#010x}, computed {actual:#010x}"
        )));
    }
    let nsections = get_u32(table, 0) as usize;
    if 4 + TABLE_ENTRY_V2 * nsections + 4 != table_len {
        return Err(header_err(format!(
            "section table length disagrees with count: {nsections} sections in {table_len} bytes"
        )));
    }
    let mut sections = Vec::with_capacity(nsections);
    for i in 0..nsections {
        let at = 4 + TABLE_ENTRY_V2 * i;
        let section = Section::from_u8(table[at])
            .ok_or_else(|| header_err(format!("unknown section code {}", table[at])))?;
        sections.push(SectionEntryV2 {
            section,
            offset: get_u64(table, at + 1),
            disk_len: get_u64(table, at + 9),
            raw_len: get_u64(table, at + 17),
            nchunks: get_u32(table, at + 25),
        });
    }
    Ok(PartHeaderV2 {
        part,
        elem_dim,
        gid_counter,
        flags,
        sections,
    })
}

/// A part header of either format version.
#[derive(Debug)]
pub enum AnyPartHeader {
    /// Version 1: flat sections with whole-payload CRCs.
    V1(PartHeader),
    /// Version 2: chunked, compressed sections.
    V2(PartHeaderV2),
}

impl AnyPartHeader {
    /// Element dimension recorded in the file.
    pub fn elem_dim(&self) -> u32 {
        match self {
            AnyPartHeader::V1(h) => h.elem_dim,
            AnyPartHeader::V2(h) => h.elem_dim,
        }
    }

    /// Fresh-gid counter recorded in the file.
    pub fn gid_counter(&self) -> u64 {
        match self {
            AnyPartHeader::V1(h) => h.gid_counter,
            AnyPartHeader::V2(h) => h.gid_counter,
        }
    }
}

/// Parse a part file of either version, dispatching on the version field.
pub fn parse_part_any(part: PartId, data: &[u8]) -> Result<AnyPartHeader, IoError> {
    match peek_part_version(part, data)? {
        FORMAT_VERSION => Ok(AnyPartHeader::V1(parse_part_header(part, data)?)),
        FORMAT_VERSION_V2 => Ok(AnyPartHeader::V2(parse_part_header_v2(part, data)?)),
        v => Err(IoError::Header {
            part,
            detail: format!(
                "unsupported format version {v} (reader supports {FORMAT_VERSION} and {FORMAT_VERSION_V2})"
            ),
        }),
    }
}

/// A field's descriptor in the manifest (enough to rebuild the `Field`
/// template on any rank count).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldDesc {
    /// Field name.
    pub name: String,
    /// Node distribution.
    pub shape: FieldShape,
    /// Components per node.
    pub ncomp: u32,
}

/// Stable on-disk code for a [`FieldShape`].
pub fn shape_to_u8(s: FieldShape) -> u8 {
    match s {
        FieldShape::Linear => 0,
        FieldShape::Quadratic => 1,
        FieldShape::Constant => 2,
    }
}

/// Decode a [`FieldShape`] code.
pub fn shape_from_u8(x: u8) -> Option<FieldShape> {
    match x {
        0 => Some(FieldShape::Linear),
        1 => Some(FieldShape::Quadratic),
        2 => Some(FieldShape::Constant),
        _ => None,
    }
}

/// The checkpoint manifest written by rank 0.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Format version of the checkpoint's part files (1 or 2).
    pub version: u32,
    /// Number of parts in the checkpoint (= number of part files).
    pub nparts: u32,
    /// Element dimension of the mesh.
    pub elem_dim: u32,
    /// World size at write time (informational).
    pub nranks_at_write: u32,
    /// Global owned entity counts per dimension `[vtx, edge, face, rgn]`.
    pub owned_counts: [u64; 4],
    /// Whether any part carried ghost copies (restored only for N == M).
    pub has_ghosts: bool,
    /// Field descriptors, in write order.
    pub fields: Vec<FieldDesc>,
    /// Number of delta rounds appended after the base snapshot (v2 only;
    /// delta `k` lives in `delta_<k:04>/` under the checkpoint directory).
    pub delta_count: u32,
}

/// Serialize the manifest to its on-disk bytes.
pub fn encode_manifest(m: &Manifest) -> Vec<u8> {
    let mut w = MsgWriter::new();
    w.put_u32(m.nparts);
    w.put_u32(m.elem_dim);
    w.put_u32(m.nranks_at_write);
    for &c in &m.owned_counts {
        w.put_u64(c);
    }
    w.put_u8(m.has_ghosts as u8);
    w.put_u32(m.fields.len() as u32);
    for f in &m.fields {
        w.put_bytes(f.name.as_bytes());
        w.put_u8(shape_to_u8(f.shape));
        w.put_u32(f.ncomp);
    }
    if m.version >= FORMAT_VERSION_V2 {
        w.put_u32(m.delta_count);
    }
    let body = w.finish();
    let mut out = Vec::with_capacity(12 + body.len() + 4);
    out.extend_from_slice(&MANIFEST_MAGIC);
    out.extend_from_slice(&m.version.to_le_bytes());
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(&body);
    out.extend_from_slice(&crc32(&body).to_le_bytes());
    out
}

/// Parse and checksum-verify manifest bytes. `path` is used only for error
/// messages.
pub fn parse_manifest(path: &Path, data: &[u8]) -> Result<Manifest, IoError> {
    let err = |detail: String| IoError::Manifest {
        path: path.to_path_buf(),
        detail,
    };
    if data.len() < 16 {
        return Err(err(format!("too short: {} bytes", data.len())));
    }
    if data[0..4] != MANIFEST_MAGIC {
        return Err(err("bad magic (not a .pmb manifest)".into()));
    }
    let version = get_u32(data, 4);
    if version != FORMAT_VERSION && version != FORMAT_VERSION_V2 {
        return Err(err(format!("unsupported format version {version}")));
    }
    let body_len = get_u32(data, 8) as usize;
    if data.len() < 12 + body_len + 4 {
        return Err(err(format!(
            "body truncated: need {} bytes, have {}",
            12 + body_len + 4,
            data.len()
        )));
    }
    let body = &data[12..12 + body_len];
    let stored = get_u32(data, 12 + body_len);
    if crc32(body) != stored {
        return Err(err("body CRC mismatch".into()));
    }
    let mut r = MsgReader::from_vec(body.to_vec());
    let parse = |e: pumi_pcu::MsgError| err(format!("body does not decode: {e}"));
    let nparts = r.try_get_u32().map_err(parse)?;
    let elem_dim = r.try_get_u32().map_err(parse)?;
    let nranks_at_write = r.try_get_u32().map_err(parse)?;
    let mut owned_counts = [0u64; 4];
    for c in &mut owned_counts {
        *c = r.try_get_u64().map_err(parse)?;
    }
    let has_ghosts = r.try_get_u8().map_err(parse)? != 0;
    let nfields = r.try_get_u32().map_err(parse)?;
    let mut fields = Vec::with_capacity(nfields as usize);
    for _ in 0..nfields {
        let name_bytes = r.try_get_bytes_shared().map_err(parse)?;
        let name = std::str::from_utf8(&name_bytes)
            .map_err(|_| err("field name is not UTF-8".into()))?
            .to_string();
        let shape_code = r.try_get_u8().map_err(parse)?;
        let shape = shape_from_u8(shape_code)
            .ok_or_else(|| err(format!("unknown field shape code {shape_code}")))?;
        let ncomp = r.try_get_u32().map_err(parse)?;
        fields.push(FieldDesc { name, shape, ncomp });
    }
    let delta_count = if version >= FORMAT_VERSION_V2 {
        r.try_get_u32().map_err(parse)?
    } else {
        0
    };
    if nparts == 0 {
        return Err(err("zero parts".into()));
    }
    if elem_dim as usize > 3 {
        return Err(err(format!("bad element dimension {elem_dim}")));
    }
    Ok(Manifest {
        version,
        nparts,
        elem_dim,
        nranks_at_write,
        owned_counts,
        has_ghosts,
        fields,
        delta_count,
    })
}

/// The directory holding delta round `k` (1-based) under a checkpoint dir.
pub fn delta_dir(dir: &Path, k: u32) -> PathBuf {
    dir.join(format!("delta_{k:04}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn part_header_roundtrip() {
        let sections = vec![
            (Section::Entities, Bytes::from(vec![1u8, 2, 3])),
            (Section::Remotes, Bytes::from(vec![4u8; 10])),
        ];
        let file = encode_part_file(7, 3, 42, &sections);
        let h = parse_part_header(7, &file).expect("parse");
        assert_eq!(h.part, 7);
        assert_eq!(h.elem_dim, 3);
        assert_eq!(h.gid_counter, 42);
        assert_eq!(h.sections.len(), 2);
        let e = find_section(&h, Section::Entities).expect("entities entry");
        assert_eq!(section_payload(7, &file, &e).expect("payload"), &[1, 2, 3]);
        let r = find_section(&h, Section::Remotes).expect("remotes entry");
        assert_eq!(section_payload(7, &file, &r).expect("payload"), &[4u8; 10]);
    }

    #[test]
    fn flipped_header_byte_is_detected() {
        let mut file = encode_part_file(1, 2, 0, &[(Section::Entities, Bytes::from(vec![9u8]))]);
        file[13] ^= 0x10; // inside elem_dim, covered by the header CRC
        assert!(matches!(
            parse_part_header(1, &file),
            Err(IoError::Header { part: 1, .. })
        ));
    }

    #[test]
    fn flipped_payload_byte_is_bad_checksum() {
        let mut file = encode_part_file(2, 2, 0, &[(Section::Tags, Bytes::from(vec![5u8; 20]))]);
        let n = file.len();
        file[n - 1] ^= 0xFF;
        let h = parse_part_header(2, &file).expect("header still fine");
        let e = find_section(&h, Section::Tags).expect("entry");
        assert!(matches!(
            section_payload(2, &file, &e),
            Err(IoError::BadChecksum {
                part: 2,
                section: Section::Tags
            })
        ));
    }

    #[test]
    fn truncated_payload_is_reported() {
        let file = encode_part_file(3, 2, 0, &[(Section::Fields, Bytes::from(vec![5u8; 20]))]);
        let cut = &file[..file.len() - 6];
        let h = parse_part_header(3, cut).expect("header intact");
        let e = find_section(&h, Section::Fields).expect("entry");
        assert!(matches!(
            section_payload(3, cut, &e),
            Err(IoError::Truncated {
                part: 3,
                section: Section::Fields,
                ..
            })
        ));
    }

    #[test]
    fn manifest_roundtrip() {
        let m = Manifest {
            version: FORMAT_VERSION,
            nparts: 8,
            elem_dim: 3,
            nranks_at_write: 4,
            owned_counts: [100, 300, 350, 150],
            has_ghosts: true,
            fields: vec![
                FieldDesc {
                    name: "velocity".into(),
                    shape: FieldShape::Linear,
                    ncomp: 3,
                },
                FieldDesc {
                    name: "pressure".into(),
                    shape: FieldShape::Constant,
                    ncomp: 1,
                },
            ],
            delta_count: 0,
        };
        let bytes = encode_manifest(&m);
        let back = parse_manifest(Path::new("manifest.pmb"), &bytes).expect("parse");
        assert_eq!(back, m);
    }

    #[test]
    fn manifest_v2_roundtrips_delta_count() {
        let m = Manifest {
            version: FORMAT_VERSION_V2,
            nparts: 4,
            elem_dim: 2,
            nranks_at_write: 4,
            owned_counts: [50, 120, 71, 0],
            has_ghosts: false,
            fields: vec![],
            delta_count: 3,
        };
        let bytes = encode_manifest(&m);
        let back = parse_manifest(Path::new("manifest.pmb"), &bytes).expect("parse");
        assert_eq!(back, m);
    }

    #[test]
    fn v2_header_and_table_roundtrip() {
        let entries = vec![
            SectionEntryV2 {
                section: Section::Entities,
                offset: HEADER_V2_LEN as u64,
                disk_len: 500,
                raw_len: 2000,
                nchunks: 2,
            },
            SectionEntryV2 {
                section: Section::Deleted,
                offset: HEADER_V2_LEN as u64 + 500,
                disk_len: 60,
                raw_len: 64,
                nchunks: 1,
            },
        ];
        let table = encode_table_v2(&entries);
        let body_len: u64 = entries.iter().map(|e| e.disk_len).sum();
        let table_offset = HEADER_V2_LEN as u64 + body_len;
        let hdr = encode_header_v2(9, 2, 77, FLAG_DELTA, table_offset, table.len() as u32);
        let mut file = Vec::new();
        file.extend_from_slice(&hdr);
        file.resize(HEADER_V2_LEN + body_len as usize, 0xAB);
        file.extend_from_slice(&table);
        let h = parse_part_header_v2(9, &file).expect("parse");
        assert_eq!(h.part, 9);
        assert_eq!(h.elem_dim, 2);
        assert_eq!(h.gid_counter, 77);
        assert!(h.is_delta());
        assert_eq!(h.sections.len(), 2);
        let d = h.find(Section::Deleted).expect("deleted entry");
        assert_eq!(d.raw_len, 64);
        assert_eq!(d.nchunks, 1);
        match parse_part_any(9, &file).expect("any") {
            AnyPartHeader::V2(h2) => assert_eq!(h2.gid_counter, 77),
            other => panic!("expected v2, got {other:?}"),
        }
        // Damaged header byte → typed Header error before any offset is used.
        let mut bad = file.clone();
        bad[30] ^= 0x40;
        assert!(matches!(
            parse_part_header_v2(9, &bad),
            Err(IoError::Header { part: 9, .. })
        ));
        // Damaged table byte → typed Header error too.
        let mut bad = file.clone();
        let n = bad.len();
        bad[n - 6] ^= 0x01;
        assert!(matches!(
            parse_part_header_v2(9, &bad),
            Err(IoError::Header { part: 9, .. })
        ));
    }

    #[test]
    fn manifest_corruption_detected() {
        let m = Manifest {
            version: FORMAT_VERSION,
            nparts: 2,
            elem_dim: 2,
            nranks_at_write: 2,
            owned_counts: [10, 20, 11, 0],
            has_ghosts: false,
            fields: vec![],
            delta_count: 0,
        };
        let mut bytes = encode_manifest(&m);
        bytes[14] ^= 1;
        assert!(matches!(
            parse_manifest(Path::new("m"), &bytes),
            Err(IoError::Manifest { .. })
        ));
    }
}
