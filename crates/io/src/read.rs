//! Parallel checkpoint reader with N→M repartition-on-load.
//!
//! A checkpoint written from N parts can be restored onto any M ranks:
//!
//! * **M = N** — each rank loads its parts verbatim, including ghost
//!   layers; remote-copy links are rebuilt by one phased exchange of
//!   (dimension, global id, local index) keys.
//! * **M < N** — rank `r` loads the part block `[r·N/M, (r+1)·N/M)` and
//!   merges it into a single part through the migration path.
//! * **M > N** — file part `p` loads onto rank `p·M/N` and is split across
//!   the block `[p·M/N, (p+1)·M/N)` with the local graph partitioner,
//!   again through migration.
//!
//! Ghost layers are dropped when N ≠ M (re-grow with
//! `pumi_core::overlap::grow_overlap` after the restore); global-id
//! counters are
//! floored at the global maximum so ids minted after a restore never
//! collide with checkpointed ones. Every entry point is collective and
//! returns `Err` on *every* rank when any rank fails.

use crate::chunk::section_raw_bytes;
use crate::error::{IoError, Section};
use crate::format::{
    find_section, parse_manifest, parse_part_any, part_file_path, section_payload, AnyPartHeader,
    Manifest, PartHeader, MANIFEST_FILE,
};
use crate::FIELD_TAG_PREFIX;
use pumi_core::verify::verify_dist;
use pumi_core::{migrate, DistMesh, MigrationPlan, Part, PartExchange, PartMap};
use pumi_field::{DistField, Field};
use pumi_geom::GeomEnt;
use pumi_mesh::Topology;
use pumi_partition::partition_mesh;
use pumi_pcu::{Comm, MsgError, MsgReader, MsgWriter};
use pumi_util::tag::{TagData, TagKind};
use pumi_util::{Dim, FxHashMap, GlobalId, MeshEnt, PartId};
use std::path::Path;

/// Options for [`read_checkpoint_with`].
#[derive(Debug, Clone, Copy)]
pub struct ReadOpts {
    /// Run `pumi_core::verify` on the restored mesh (default `true`).
    pub verify: bool,
    /// Also run the typed `pumi_check::check_dist` invariant checker on the
    /// restored mesh (default `false`); violations surface as
    /// [`IoError::Verify`].
    pub check: bool,
}

impl Default for ReadOpts {
    fn default() -> Self {
        ReadOpts {
            verify: true,
            check: false,
        }
    }
}

/// Statistics from a completed restore.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReadStats {
    /// Parts in the checkpoint (N).
    pub nparts_in: usize,
    /// Bytes read across the world.
    pub bytes_global: u64,
    /// Whether an N→M redistribution ran.
    pub redistributed: bool,
    /// Elements moved by the redistribution (global).
    pub elements_moved: u64,
}

/// A restored checkpoint: the mesh, its fields (in manifest order), and
/// restore statistics.
pub struct Restored {
    /// The distributed mesh, one part per rank after any redistribution.
    pub dm: DistMesh,
    /// Fields in manifest order, each aligned with `dm.parts`.
    pub fields: Vec<DistField>,
    /// Restore statistics.
    pub stats: ReadStats,
}

fn derr(part: PartId, section: Section) -> impl Fn(MsgError) -> IoError {
    move |e| IoError::Decode {
        part,
        section,
        detail: e.to_string(),
    }
}

/// Per-part data that feeds the post-load stitching exchanges.
pub(crate) struct LoadedPart {
    pub(crate) part: Part,
    /// Part-boundary rows: (dim, gid, residence parts — already remapped).
    pub(crate) res_rows: Vec<(Dim, GlobalId, Vec<PartId>)>,
    /// Ghost-holder rows: (local ghost entity, source part).
    pub(crate) ghost_rows: Vec<(MeshEnt, PartId)>,
    pub(crate) gid_counter: u64,
    pub(crate) bytes: u64,
}

pub(crate) fn decode_entities(
    fpart: PartId,
    part: &mut Part,
    payload: Vec<u8>,
    elem_dim: usize,
    skip_ghosts: bool,
) -> Result<Vec<(MeshEnt, PartId)>, IoError> {
    let sec = Section::Entities;
    let e = derr(fpart, sec);
    let mut r = MsgReader::from_vec(payload);
    let mut ghost_rows = Vec::new();
    for d in 0..=elem_dim {
        let n = r.try_get_u32().map_err(&e)?;
        for _ in 0..n {
            let gid = r.try_get_u64().map_err(&e)?;
            let topo_code = r.try_get_u8().map_err(&e)?;
            let class = r.try_get_u32().map_err(&e)?;
            let ghost = r.try_get_u8().map_err(&e)? != 0;
            let src = if ghost {
                Some(r.try_get_u32().map_err(&e)?)
            } else {
                None
            };
            let topo = Topology::try_from_u8(topo_code)
                .ok_or(MsgError::bad_enum("topology", topo_code))
                .map_err(&e)?;
            if topo.dim().as_usize() != d {
                return Err(IoError::Decode {
                    part: fpart,
                    section: sec,
                    detail: format!("topology {topo:?} in dimension-{d} block"),
                });
            }
            if d == 0 {
                let x = [
                    r.try_get_f64().map_err(&e)?,
                    r.try_get_f64().map_err(&e)?,
                    r.try_get_f64().map_err(&e)?,
                ];
                if ghost && skip_ghosts {
                    continue;
                }
                let v = part.add_vertex(x, GeomEnt(class), gid);
                if let Some(src) = src {
                    ghost_rows.push((v, src));
                }
            } else {
                let vgids = r.try_get_u64_slice().map_err(&e)?;
                if ghost && skip_ghosts {
                    continue;
                }
                let mut verts = Vec::with_capacity(vgids.len());
                for g in vgids {
                    match part.find_gid(Dim::Vertex, g) {
                        Some(v) => verts.push(v.index()),
                        None => {
                            return Err(IoError::Decode {
                                part: fpart,
                                section: sec,
                                detail: format!("entity gid {gid} references unknown vertex {g}"),
                            })
                        }
                    }
                }
                let ent = part.add_entity(topo, &verts, GeomEnt(class), gid);
                if let Some(src) = src {
                    ghost_rows.push((ent, src));
                }
            }
        }
    }
    Ok(ghost_rows)
}

pub(crate) fn decode_remotes(
    fpart: PartId,
    payload: Vec<u8>,
    remap: &dyn Fn(PartId) -> PartId,
) -> Result<Vec<(Dim, GlobalId, Vec<PartId>)>, IoError> {
    let e = derr(fpart, Section::Remotes);
    let mut r = MsgReader::from_vec(payload);
    let n = r.try_get_u32().map_err(&e)?;
    let mut rows = Vec::with_capacity(n as usize);
    for _ in 0..n {
        let db = r.try_get_u8().map_err(&e)?;
        let d = Dim::try_from_u8(db)
            .ok_or(MsgError::bad_enum("dimension", db))
            .map_err(&e)?;
        let gid = r.try_get_u64().map_err(&e)?;
        let res = r.try_get_u32_slice().map_err(&e)?;
        let res: Vec<PartId> = res.into_iter().map(remap).collect();
        rows.push((d, gid, res));
    }
    Ok(rows)
}

pub(crate) fn decode_tags(
    fpart: PartId,
    part: &mut Part,
    payload: Vec<u8>,
    skip_ghosts: bool,
) -> Result<(), IoError> {
    let sec = Section::Tags;
    let e = derr(fpart, sec);
    let mut r = MsgReader::from_vec(payload);
    let ntags = r.try_get_u32().map_err(&e)?;
    for _ in 0..ntags {
        let name = r.try_get_bytes().map_err(&e)?;
        let name = String::from_utf8(name).map_err(|_| IoError::Decode {
            part: fpart,
            section: sec,
            detail: "tag name is not UTF-8".into(),
        })?;
        let kind = match r.try_get_u8().map_err(&e)? {
            0 => TagKind::Int,
            1 => TagKind::Double,
            2 => TagKind::Bytes,
            k => return Err(e(MsgError::bad_enum("tag kind", k))),
        };
        let len = r.try_get_u32().map_err(&e)? as usize;
        let nrows = r.try_get_u32().map_err(&e)?;
        let tid = part.mesh.tags_mut().declare(&name, kind, len);
        for _ in 0..nrows {
            let db = r.try_get_u8().map_err(&e)?;
            let d = Dim::try_from_u8(db)
                .ok_or(MsgError::bad_enum("dimension", db))
                .map_err(&e)?;
            let gid = r.try_get_u64().map_err(&e)?;
            let buf = r.try_get_bytes().map_err(&e)?;
            let mut pos = 0;
            let data = TagData::decode(&buf, &mut pos).ok_or_else(|| IoError::Decode {
                part: fpart,
                section: sec,
                detail: format!("undecodable value for tag '{name}'"),
            })?;
            match part.find_gid(d, gid) {
                Some(ent) => part.mesh.tags_mut().set(tid, ent, data),
                // Ghost entities are dropped on N≠M restores; their rows
                // are skipped with them.
                None if skip_ghosts => {}
                None => {
                    return Err(IoError::Decode {
                        part: fpart,
                        section: sec,
                        detail: format!("tag '{name}' row references unknown gid {gid}"),
                    })
                }
            }
        }
    }
    Ok(())
}

pub(crate) fn decode_fields(
    fpart: PartId,
    part: &mut Part,
    payload: Vec<u8>,
    skip_ghosts: bool,
) -> Result<(), IoError> {
    let sec = Section::Fields;
    let e = derr(fpart, sec);
    let mut r = MsgReader::from_vec(payload);
    let nfields = r.try_get_u32().map_err(&e)?;
    for _ in 0..nfields {
        let name = r.try_get_bytes().map_err(&e)?;
        let name = String::from_utf8(name).map_err(|_| IoError::Decode {
            part: fpart,
            section: sec,
            detail: "field name is not UTF-8".into(),
        })?;
        let _shape = r.try_get_u8().map_err(&e)?;
        let ncomp = r.try_get_u32().map_err(&e)? as usize;
        let nrows = r.try_get_u32().map_err(&e)?;
        // Stage node values in a tag: tags ride migration automatically, so
        // redistribution carries field data with no extra machinery.
        let tid = part.mesh.tags_mut().declare(
            &format!("{FIELD_TAG_PREFIX}{name}"),
            TagKind::Double,
            ncomp,
        );
        for _ in 0..nrows {
            let db = r.try_get_u8().map_err(&e)?;
            let d = Dim::try_from_u8(db)
                .ok_or(MsgError::bad_enum("dimension", db))
                .map_err(&e)?;
            let gid = r.try_get_u64().map_err(&e)?;
            let vals = r.try_get_f64_slice().map_err(&e)?;
            match part.find_gid(d, gid) {
                Some(ent) => part.mesh.tags_mut().set(tid, ent, TagData::Dbls(vals)),
                None if skip_ghosts => {}
                None => {
                    return Err(IoError::Decode {
                        part: fpart,
                        section: sec,
                        detail: format!("field '{name}' row references unknown gid {gid}"),
                    })
                }
            }
        }
    }
    Ok(())
}

fn require_section(
    fpart: PartId,
    header: &PartHeader,
    section: Section,
) -> Result<crate::format::SectionEntry, IoError> {
    find_section(header, section).ok_or_else(|| IoError::Header {
        part: fpart,
        detail: format!("missing section '{}'", section.name()),
    })
}

/// Materialize one section's raw (decoded-container) bytes from either
/// format version: a verified slice copy for v1, chunk-by-chunk
/// decompression for v2.
pub(crate) fn section_bytes(
    fpart: PartId,
    data: &[u8],
    header: &AnyPartHeader,
    section: Section,
) -> Result<Vec<u8>, IoError> {
    match header {
        AnyPartHeader::V1(h) => {
            let entry = require_section(fpart, h, section)?;
            Ok(section_payload(fpart, data, &entry)?.to_vec())
        }
        AnyPartHeader::V2(h) => {
            let e = h.find(section).ok_or_else(|| IoError::Header {
                part: fpart,
                detail: format!("missing section '{}'", section.name()),
            })?;
            section_raw_bytes(
                fpart, section, data, e.offset, e.disk_len, e.raw_len, e.nchunks,
            )
        }
    }
}

fn load_part(
    dir: &Path,
    fpart: PartId,
    loaded_id: PartId,
    manifest: &Manifest,
    skip_ghosts: bool,
    remap: &impl Fn(PartId) -> PartId,
) -> Result<LoadedPart, IoError> {
    let path = part_file_path(dir, fpart);
    let data = std::fs::read(&path).map_err(|e| IoError::Io {
        path: path.clone(),
        source: e,
    })?;
    let header = parse_part_any(fpart, &data)?;
    let elem_dim = manifest.elem_dim as usize;
    if header.elem_dim() as usize != elem_dim {
        return Err(IoError::Header {
            part: fpart,
            detail: format!(
                "element dimension {} disagrees with manifest ({})",
                header.elem_dim(),
                manifest.elem_dim
            ),
        });
    }
    if let AnyPartHeader::V2(h) = &header {
        if h.is_delta() {
            return Err(IoError::Header {
                part: fpart,
                detail: "delta part file where a base snapshot was expected".into(),
            });
        }
    }
    let mut part = Part::new(loaded_id, elem_dim);
    let payload = section_bytes(fpart, &data, &header, Section::Entities)?;
    let ghost_rows = decode_entities(fpart, &mut part, payload, elem_dim, skip_ghosts)?;
    let payload = section_bytes(fpart, &data, &header, Section::Remotes)?;
    let res_rows = decode_remotes(fpart, payload, remap)?;
    let payload = section_bytes(fpart, &data, &header, Section::Tags)?;
    decode_tags(fpart, &mut part, payload, skip_ghosts)?;
    let payload = section_bytes(fpart, &data, &header, Section::Fields)?;
    decode_fields(fpart, &mut part, payload, skip_ghosts)?;
    let mut lp = LoadedPart {
        part,
        res_rows,
        ghost_rows,
        gid_counter: header.gid_counter(),
        bytes: data.len() as u64,
    };
    if manifest.delta_count > 0 {
        crate::delta::replay_deltas(dir, fpart, manifest, &mut lp, skip_ghosts, remap)?;
    }
    Ok(lp)
}

/// Byte-level access to one checkpoint's part files, abstracted so that a
/// restore service (`pumi-serve`) can interpose a shared chunk cache
/// between the files and the decoders. `delta == None` addresses the base
/// snapshot's part file, `Some(k)` delta round `k`'s file; the returned
/// bytes are the section's raw (decompressed, CRC-verified) stream.
pub trait SectionSource {
    /// Fetch one section of one part file.
    fn section(
        &self,
        fpart: PartId,
        delta: Option<u32>,
        section: Section,
    ) -> Result<Vec<u8>, IoError>;
}

/// Load one part of a checkpoint standalone: no remote-copy stitching, no
/// ghost layers (ghost copies are dropped on decode), deltas replayed in
/// order. Field values stay staged as `__io:f:<name>` double tags, exactly
/// as they ride migration during a collective restore. This is the restore
/// primitive behind `pumi-serve`'s slice service; the full collective
/// restore is [`read_checkpoint`].
pub fn load_standalone_part(
    manifest: &Manifest,
    fpart: PartId,
    src: &dyn SectionSource,
) -> Result<Part, IoError> {
    let elem_dim = manifest.elem_dim as usize;
    let mut part = Part::new(fpart, elem_dim);
    let payload = src.section(fpart, None, Section::Entities)?;
    decode_entities(fpart, &mut part, payload, elem_dim, true)?;
    let payload = src.section(fpart, None, Section::Tags)?;
    decode_tags(fpart, &mut part, payload, true)?;
    let payload = src.section(fpart, None, Section::Fields)?;
    decode_fields(fpart, &mut part, payload, true)?;
    let mut ghost_map = FxHashMap::default();
    for k in 1..=manifest.delta_count {
        crate::delta::apply_delta_round(
            fpart,
            &mut part,
            elem_dim,
            true,
            &mut ghost_map,
            &mut |s| src.section(fpart, Some(k), s),
        )?;
    }
    Ok(part)
}

/// Read the manifest on rank 0 and broadcast it.
pub(crate) fn manifest_bcast(comm: &Comm, dir: &Path) -> Result<Manifest, IoError> {
    let path = dir.join(MANIFEST_FILE);
    let mut w = MsgWriter::new();
    if comm.rank() == 0 {
        match std::fs::read(&path) {
            Ok(data) => {
                w.put_u8(1);
                w.put_bytes(&data);
            }
            Err(e) => {
                w.put_u8(0);
                w.put_bytes(e.to_string().as_bytes());
            }
        }
    }
    let blob = comm.bcast_bytes(0, w.finish());
    let mut r = MsgReader::new(blob);
    let framing = |e: MsgError| IoError::Manifest {
        path: path.clone(),
        detail: format!("broadcast framing: {e}"),
    };
    let ok = r.try_get_u8().map_err(framing)?;
    let body = r.try_get_bytes().map_err(framing)?;
    if ok == 0 {
        return Err(IoError::Manifest {
            path,
            detail: String::from_utf8_lossy(&body).into_owned(),
        });
    }
    parse_manifest(&path, &body)
}

/// Restore a checkpoint from `dir` with default options (verification on).
/// Collective over all ranks of `comm`.
pub fn read_checkpoint(comm: &Comm, dir: &Path) -> Result<Restored, IoError> {
    read_checkpoint_with(comm, dir, ReadOpts::default())
}

/// Restore a checkpoint from `dir` onto `comm.nranks()` ranks, regardless
/// of how many parts it was written from. See the module docs for the
/// N→M policy. Collective; on failure every rank returns an error (ranks
/// without a local failure get [`IoError::PeerFailed`]).
pub fn read_checkpoint_with(comm: &Comm, dir: &Path, opts: ReadOpts) -> Result<Restored, IoError> {
    let _span = pumi_obs::span!("io.read");
    let manifest = manifest_bcast(comm, dir)?;
    let n = manifest.nparts as usize;
    let m = comm.nranks();
    let rank = comm.rank();
    let elem_dim = manifest.elem_dim as usize;
    let skip_ghosts = n != m;

    // Part assignment and id remapping (old part id → loaded part id).
    // N ≥ M: ids are unchanged, rank r hosts a contiguous block.
    // N < M: file part p becomes part p·M/N on rank p·M/N; the other ranks
    // start empty and receive elements in the split phase.
    let map = if n >= m {
        PartMap::balanced_blocks(n, m)
    } else {
        PartMap::contiguous(m, m)
    };
    let assignments: Vec<(PartId, PartId)> = if n >= m {
        map.parts_on(rank).iter().map(|&p| (p, p)).collect()
    } else {
        (0..n as PartId)
            .filter(|&p| (p as usize * m) / n == rank)
            .map(|p| (p, ((p as usize * m) / n) as PartId))
            .collect()
    };
    let remap = |p: PartId| -> PartId {
        if n >= m {
            p
        } else {
            ((p as usize * m) / n) as PartId
        }
    };

    let mut loaded: Vec<LoadedPart> = Vec::new();
    let mut local_err: Option<IoError> = None;
    for &(fpart, loaded_id) in &assignments {
        match load_part(dir, fpart, loaded_id, &manifest, skip_ghosts, &remap) {
            Ok(lp) => loaded.push(lp),
            Err(e) => {
                local_err = Some(e);
                break;
            }
        }
    }
    let bytes_local: u64 = loaded.iter().map(|lp| lp.bytes).sum();
    pumi_obs::metrics::counter_add("io.read.bytes", bytes_local);
    let failures = comm.allreduce_sum_u64(local_err.is_some() as u64);
    if failures > 0 {
        return Err(local_err.unwrap_or(IoError::PeerFailed { failures }));
    }
    let bytes_global = comm.allreduce_sum_u64(bytes_local);

    // Floor every gid counter at the global max so ids minted after the
    // restore stay disjoint from every checkpointed id.
    let max_counter =
        comm.allreduce_max_u64(loaded.iter().map(|lp| lp.gid_counter).max().unwrap_or(0));

    let mut res_rows: Vec<Vec<(Dim, GlobalId, Vec<PartId>)>> = Vec::new();
    let mut ghost_rows: Vec<Vec<(MeshEnt, PartId)>> = Vec::new();
    let mut parts: Vec<Part> = Vec::new();
    if n >= m {
        for lp in loaded {
            parts.push(lp.part);
            res_rows.push(lp.res_rows);
            ghost_rows.push(lp.ghost_rows);
        }
    } else {
        // Exactly one part per rank; ranks outside the start set begin empty.
        match loaded.into_iter().next() {
            Some(lp) => {
                parts.push(lp.part);
                res_rows.push(lp.res_rows);
                ghost_rows.push(lp.ghost_rows);
            }
            None => {
                parts.push(Part::new(rank as PartId, elem_dim));
                res_rows.push(Vec::new());
                ghost_rows.push(Vec::new());
            }
        }
    }
    for p in &mut parts {
        p.bump_gid_counter(max_counter);
    }
    let mut dm = DistMesh { map, parts };

    // Stitch remote-copy links: each resident part announces its local
    // index for every boundary entity to the entity's other residence parts.
    let mut ex = PartExchange::new(comm, &dm.map);
    for (slot, part) in dm.parts.iter().enumerate() {
        for (dim, gid, res) in &res_rows[slot] {
            let Some(local) = part.find_gid(*dim, *gid) else {
                continue;
            };
            for &q in res {
                if q != part.id {
                    let w = ex.to(part.id, q);
                    w.put_u8(dim.as_usize() as u8);
                    w.put_u64(*gid);
                    w.put_u32(local.index());
                }
            }
        }
    }
    let mut incoming: FxHashMap<PartId, FxHashMap<MeshEnt, Vec<(PartId, u32)>>> =
        FxHashMap::default();
    // Remote-copy lists must not depend on frame arrival order.
    let mut frames = ex.finish();
    frames.sort_by_key(|&(from, to, _)| (to, from));
    for (from, to, mut r) in frames {
        let slot = incoming.entry(to).or_default();
        while !r.is_done() {
            let row = || -> Result<(Dim, GlobalId, u32), MsgError> {
                let db = r.try_get_u8()?;
                let d = Dim::try_from_u8(db).ok_or(MsgError::bad_enum("dimension", db))?;
                let gid = r.try_get_u64()?;
                let idx = r.try_get_u32()?;
                Ok((d, gid, idx))
            }();
            let Ok((d, gid, ridx)) = row else { break };
            if let Some(local) = dm.part(to).find_gid(d, gid) {
                slot.entry(local).or_default().push((from, ridx));
            }
        }
    }
    for (to, ents) in incoming {
        let part = dm.part_mut(to);
        for (e, copies) in ents {
            part.set_remotes(e, copies);
        }
    }

    // Relink ghost layers (only on an N = N restore; dropped otherwise).
    if manifest.has_ghosts && !skip_ghosts {
        let mut ex = PartExchange::new(comm, &dm.map);
        for (slot, part) in dm.parts.iter().enumerate() {
            for &(ent, src) in &ghost_rows[slot] {
                let w = ex.to(part.id, src);
                w.put_u8(ent.dim().as_usize() as u8);
                w.put_u64(part.gid_of(ent));
                w.put_u32(ent.index());
            }
        }
        // (owner part → holder part, dim, holder idx, owner idx)
        let mut replies: Vec<(PartId, PartId, u8, u32, u32)> = Vec::new();
        let mut frames = ex.finish();
        frames.sort_by_key(|&(from, to, _)| (to, from));
        for (from, to, mut r) in frames {
            while !r.is_done() {
                let row = || -> Result<(Dim, GlobalId, u32), MsgError> {
                    let db = r.try_get_u8()?;
                    let d = Dim::try_from_u8(db).ok_or(MsgError::bad_enum("dimension", db))?;
                    let gid = r.try_get_u64()?;
                    let idx = r.try_get_u32()?;
                    Ok((d, gid, idx))
                }();
                let Ok((d, gid, holder_idx)) = row else { break };
                let part = dm.part_mut(to);
                if let Some(owner_ent) = part.find_gid(d, gid) {
                    part.record_ghost_holder(owner_ent, (from, holder_idx));
                    replies.push((to, from, d.as_usize() as u8, holder_idx, owner_ent.index()));
                }
            }
        }
        let mut ex = PartExchange::new(comm, &dm.map);
        for (owner, holder, d, holder_idx, owner_idx) in replies {
            let w = ex.to(owner, holder);
            w.put_u8(d);
            w.put_u32(holder_idx);
            w.put_u32(owner_idx);
        }
        let mut frames = ex.finish();
        frames.sort_by_key(|&(from, to, _)| (to, from));
        for (from, to, mut r) in frames {
            while !r.is_done() {
                let row = || -> Result<(Dim, u32, u32), MsgError> {
                    let db = r.try_get_u8()?;
                    let d = Dim::try_from_u8(db).ok_or(MsgError::bad_enum("dimension", db))?;
                    Ok((d, r.try_get_u32()?, r.try_get_u32()?))
                }();
                let Ok((d, holder_idx, owner_idx)) = row else {
                    break;
                };
                let e = MeshEnt::new(d, holder_idx);
                dm.part_mut(to).set_ghost(e, (from, owner_idx));
            }
        }
    }

    // N → M redistribution through the migration path.
    let mut elements_moved = 0u64;
    if n > m {
        let _span = pumi_obs::span!("io.redistribute");
        // Merge: every non-first local part sends all elements to the
        // rank's first part, then parts are renumbered 0..M.
        let d_elem = Dim::from_usize(elem_dim);
        let first = dm.map.parts_on(rank)[0];
        let mut plans: FxHashMap<PartId, MigrationPlan> = FxHashMap::default();
        for part in &dm.parts {
            if part.id == first {
                continue;
            }
            let mut plan = MigrationPlan::new();
            for e in part.mesh.iter(d_elem) {
                plan.dest.insert(e, first);
            }
            plans.insert(part.id, plan);
        }
        let stats = migrate(comm, &mut dm, &plans);
        elements_moved = stats.elements_moved;
        dm.parts.retain(|p| p.id == first);
        let old_map = std::mem::replace(&mut dm.map, PartMap::contiguous(m, m));
        for p in &mut dm.parts {
            p.id = old_map.rank_of(p.id) as PartId;
            p.remap_remote_parts(|q| old_map.rank_of(q) as PartId);
        }
    } else if n < m {
        let _span = pumi_obs::span!("io.redistribute");
        // Split: a loaded part fans its elements out over its target block
        // with the local graph partitioner.
        let d_elem = Dim::from_usize(elem_dim);
        let mut plans: FxHashMap<PartId, MigrationPlan> = FxHashMap::default();
        for &(fpart, loaded_id) in &assignments {
            let p = fpart as usize;
            let k = ((p + 1) * m) / n - (p * m) / n;
            let part = dm.part(loaded_id);
            if k <= 1 || part.mesh.count(d_elem) == 0 {
                continue;
            }
            let labels = partition_mesh(&part.mesh, k);
            let mut plan = MigrationPlan::new();
            for e in part.mesh.iter(d_elem) {
                let j = labels[e.idx()] as usize;
                if j > 0 {
                    plan.dest.insert(e, loaded_id + j as PartId);
                }
            }
            plans.insert(loaded_id, plan);
        }
        let stats = migrate(comm, &mut dm, &plans);
        elements_moved = stats.elements_moved;
    }

    // Recover staged fields, in manifest order.
    let mut fields: Vec<DistField> = Vec::new();
    for desc in &manifest.fields {
        let tag_name = format!("{FIELD_TAG_PREFIX}{}", desc.name);
        let mut df: DistField = Vec::new();
        for part in &mut dm.parts {
            let mut f = Field::new(&desc.name, desc.shape, desc.ncomp as usize);
            if let Some(tid) = part.mesh.tags().find(&tag_name) {
                for d in desc.shape.node_dims(elem_dim) {
                    let ents: Vec<MeshEnt> = part.mesh.iter(d).collect();
                    for e in ents {
                        if let Some(TagData::Dbls(v)) = part.mesh.tags_mut().remove(tid, e) {
                            f.set(e, &v);
                        }
                    }
                }
            }
            df.push(f);
        }
        fields.push(df);
    }

    if opts.verify {
        let errs = verify_dist(comm, &dm);
        let total = comm.allreduce_sum_u64(errs.len() as u64);
        if total > 0 {
            return Err(IoError::Verify { errors: errs });
        }
    }
    if opts.check {
        if let Err(fail) = pumi_check::check_dist(comm, &dm, pumi_check::CheckOpts::all()) {
            return Err(IoError::Verify {
                errors: fail.errors.iter().map(|e| e.to_string()).collect(),
            });
        }
    }

    Ok(Restored {
        dm,
        fields,
        stats: ReadStats {
            nparts_in: n,
            bytes_global,
            redistributed: n != m,
            elements_moved,
        },
    })
}
