//! Chunked, compressed section streams — the heart of `.pmb` v2.
//!
//! A v2 section payload is not one flat byte run but a sequence of
//! *chunks*, each independently compressed (LZ4 block via the vendored
//! `minilz4`) and CRC-checked:
//!
//! ```text
//! chunk: raw_len u32 | comp_len u32 | crc32 u32 | payload
//! ```
//!
//! `comp_len == 0` marks a stored (incompressible) chunk whose payload is
//! `raw_len` bytes verbatim; otherwise the payload is `comp_len` bytes of
//! LZ4 that must decompress to exactly `raw_len` bytes. The CRC covers the
//! payload *as stored*, so a flipped bit is caught before the decompressor
//! runs; `raw_len` is deliberately outside the CRC so a damaged length
//! header is caught by the decompressed-length comparison instead — both
//! surface as [`IoError::BadChunk`] naming part, section and chunk index.
//!
//! [`ChunkWriter`] is the streaming producer: encoders push typed values
//! through the [`SectionSink`] trait and every `chunk_len` raw bytes are
//! compressed and flushed to the underlying `Write` immediately, so a
//! part's serialized image is never resident in memory — peak buffering is
//! one chunk. Readers either reassemble a whole section
//! ([`section_raw_bytes`]) or pull individual chunks through a cache
//! (`pumi-serve`).

use crate::crc::crc32;
use crate::error::{IoError, Section};
use pumi_pcu::MsgWriter;
use pumi_util::PartId;
use std::io::Write;

/// Default raw-chunk size (bytes of uncompressed section stream per chunk).
pub const DEFAULT_CHUNK_LEN: usize = 256 * 1024;

/// On-disk size of a chunk header.
pub const CHUNK_HEADER_LEN: usize = 12;

/// A parsed chunk header.
#[derive(Debug, Clone, Copy)]
pub struct ChunkHeader {
    /// Decompressed payload length.
    pub raw_len: u32,
    /// Stored payload length; `0` means the chunk is stored raw
    /// (`raw_len` bytes).
    pub comp_len: u32,
    /// CRC-32 of the stored payload bytes.
    pub crc: u32,
}

impl ChunkHeader {
    /// Bytes the payload occupies on disk.
    pub fn disk_payload_len(&self) -> usize {
        if self.comp_len == 0 {
            self.raw_len as usize
        } else {
            self.comp_len as usize
        }
    }
}

/// Typed error constructor shared by the chunk readers.
pub(crate) fn bad_chunk(part: PartId, section: Section, chunk: u32, detail: String) -> IoError {
    IoError::BadChunk {
        part,
        section,
        chunk,
        detail,
    }
}

/// Parse the 12-byte header of chunk `idx` from `bytes` (which starts at
/// the chunk boundary).
pub fn parse_chunk_header(
    part: PartId,
    section: Section,
    idx: u32,
    bytes: &[u8],
) -> Result<ChunkHeader, IoError> {
    if bytes.len() < CHUNK_HEADER_LEN {
        return Err(bad_chunk(
            part,
            section,
            idx,
            format!(
                "chunk header truncated: need {CHUNK_HEADER_LEN} bytes, have {}",
                bytes.len()
            ),
        ));
    }
    let le32 = |at: usize| u32::from_le_bytes(bytes[at..at + 4].try_into().expect("bounds"));
    Ok(ChunkHeader {
        raw_len: le32(0),
        comp_len: le32(4),
        crc: le32(8),
    })
}

/// Verify and decompress one chunk payload (`payload` must be exactly
/// [`ChunkHeader::disk_payload_len`] bytes).
pub fn decode_chunk(
    part: PartId,
    section: Section,
    idx: u32,
    hdr: &ChunkHeader,
    payload: &[u8],
) -> Result<Vec<u8>, IoError> {
    let stored = crc32(payload);
    if stored != hdr.crc {
        return Err(bad_chunk(
            part,
            section,
            idx,
            format!(
                "payload CRC mismatch: stored {:#010x}, computed {stored:#010x}",
                hdr.crc
            ),
        ));
    }
    if hdr.comp_len == 0 {
        return Ok(payload.to_vec());
    }
    let raw = minilz4::decompress(payload, hdr.raw_len as usize).map_err(|e| {
        bad_chunk(
            part,
            section,
            idx,
            format!(
                "decompression failed (promised {} raw bytes): {e}",
                hdr.raw_len
            ),
        )
    })?;
    Ok(raw)
}

/// Reassemble a whole v2 section from in-memory file bytes: walk the chunk
/// stream at `[offset, offset+disk_len)`, verifying and decompressing each
/// chunk. Errors name the part, section, and damaged chunk.
pub fn section_raw_bytes(
    part: PartId,
    section: Section,
    data: &[u8],
    offset: u64,
    disk_len: u64,
    raw_len: u64,
    nchunks: u32,
) -> Result<Vec<u8>, IoError> {
    let end = offset.saturating_add(disk_len);
    if end > data.len() as u64 {
        return Err(IoError::Truncated {
            part,
            section,
            needed: end,
            have: data.len() as u64,
        });
    }
    let mut out = Vec::with_capacity(raw_len as usize);
    let mut at = offset as usize;
    let section_end = end as usize;
    for idx in 0..nchunks {
        let hdr = parse_chunk_header(part, section, idx, &data[at..section_end])?;
        at += CHUNK_HEADER_LEN;
        let plen = hdr.disk_payload_len();
        if at + plen > section_end {
            return Err(bad_chunk(
                part,
                section,
                idx,
                format!(
                    "chunk payload truncated: need {plen} bytes, have {}",
                    section_end - at
                ),
            ));
        }
        let raw = decode_chunk(part, section, idx, &hdr, &data[at..at + plen])?;
        out.extend_from_slice(&raw);
        at += plen;
    }
    if out.len() as u64 != raw_len {
        return Err(IoError::Decode {
            part,
            section,
            detail: format!(
                "section reassembled to {} bytes, table promised {raw_len}",
                out.len()
            ),
        });
    }
    Ok(out)
}

/// The typed-value sink the section encoders write through. Implemented by
/// [`MsgWriter`] (v1 in-memory sections) and [`ChunkWriter`] (v2 streaming
/// sections); the byte framing is identical, so one encoder serves both
/// format versions.
pub trait SectionSink {
    /// Append raw bytes (no length prefix).
    fn put_raw(&mut self, b: &[u8]);

    /// Write a `u8`.
    fn put_u8(&mut self, x: u8) {
        self.put_raw(&[x]);
    }
    /// Write a `u32` (little endian).
    fn put_u32(&mut self, x: u32) {
        self.put_raw(&x.to_le_bytes());
    }
    /// Write a `u64` (little endian).
    fn put_u64(&mut self, x: u64) {
        self.put_raw(&x.to_le_bytes());
    }
    /// Write an `f64` (little-endian bit pattern).
    fn put_f64(&mut self, x: f64) {
        self.put_raw(&x.to_bits().to_le_bytes());
    }
    /// Write a length-prefixed byte slice.
    fn put_bytes(&mut self, b: &[u8]) {
        self.put_u32(b.len() as u32);
        self.put_raw(b);
    }
    /// Write a length-prefixed `u32` slice.
    fn put_u32_slice(&mut self, xs: &[u32]) {
        self.put_u32(xs.len() as u32);
        for &x in xs {
            self.put_u32(x);
        }
    }
    /// Write a length-prefixed `u64` slice.
    fn put_u64_slice(&mut self, xs: &[u64]) {
        self.put_u32(xs.len() as u32);
        for &x in xs {
            self.put_u64(x);
        }
    }
    /// Write a length-prefixed `f64` slice.
    fn put_f64_slice(&mut self, xs: &[f64]) {
        self.put_u32(xs.len() as u32);
        for &x in xs {
            self.put_f64(x);
        }
    }
}

impl SectionSink for MsgWriter {
    fn put_raw(&mut self, b: &[u8]) {
        // MsgWriter has no raw append; length-free framing is reproduced
        // byte-wise through the typed puts.
        for &x in b {
            MsgWriter::put_u8(self, x);
        }
    }
    fn put_u8(&mut self, x: u8) {
        MsgWriter::put_u8(self, x);
    }
    fn put_u32(&mut self, x: u32) {
        MsgWriter::put_u32(self, x);
    }
    fn put_u64(&mut self, x: u64) {
        MsgWriter::put_u64(self, x);
    }
    fn put_f64(&mut self, x: f64) {
        MsgWriter::put_f64(self, x);
    }
    fn put_bytes(&mut self, b: &[u8]) {
        MsgWriter::put_bytes(self, b);
    }
    fn put_u32_slice(&mut self, xs: &[u32]) {
        MsgWriter::put_u32_slice(self, xs);
    }
    fn put_u64_slice(&mut self, xs: &[u64]) {
        MsgWriter::put_u64_slice(self, xs);
    }
    fn put_f64_slice(&mut self, xs: &[f64]) {
        MsgWriter::put_f64_slice(self, xs);
    }
}

/// Statistics of one finished chunked section.
#[derive(Debug, Clone, Copy, Default)]
pub struct ChunkedSection {
    /// Bytes the section occupies on disk (headers + payloads).
    pub disk_len: u64,
    /// Total raw (uncompressed) section bytes.
    pub raw_len: u64,
    /// Number of chunks written.
    pub nchunks: u32,
}

/// Streaming chunked-section writer: buffers at most `chunk_len` raw bytes,
/// compressing and flushing a chunk to the underlying writer whenever the
/// buffer fills. I/O errors are latched and surfaced once at
/// [`ChunkWriter::finish_section`] so the encoder hot path stays
/// infallible.
pub struct ChunkWriter<'w, W: Write> {
    out: &'w mut W,
    chunk_len: usize,
    buf: Vec<u8>,
    section: ChunkedSection,
    io_err: Option<std::io::Error>,
}

impl<'w, W: Write> ChunkWriter<'w, W> {
    /// A writer streaming chunks of `chunk_len` raw bytes to `out`.
    pub fn new(out: &'w mut W, chunk_len: usize) -> Self {
        let chunk_len = chunk_len.max(4096);
        ChunkWriter {
            out,
            chunk_len,
            buf: Vec::with_capacity(chunk_len),
            section: ChunkedSection::default(),
            io_err: None,
        }
    }

    fn flush_chunk(&mut self) {
        if self.buf.is_empty() || self.io_err.is_some() {
            self.buf.clear();
            return;
        }
        let raw_len = self.buf.len() as u32;
        let compressed = minilz4::compress(&self.buf);
        let (comp_len, payload): (u32, &[u8]) = if compressed.len() < self.buf.len() {
            (compressed.len() as u32, &compressed)
        } else {
            (0, &self.buf)
        };
        let crc = crc32(payload);
        let mut hdr = [0u8; CHUNK_HEADER_LEN];
        hdr[0..4].copy_from_slice(&raw_len.to_le_bytes());
        hdr[4..8].copy_from_slice(&comp_len.to_le_bytes());
        hdr[8..12].copy_from_slice(&crc.to_le_bytes());
        let res = self
            .out
            .write_all(&hdr)
            .and_then(|()| self.out.write_all(payload));
        if let Err(e) = res {
            self.io_err = Some(e);
        } else {
            self.section.disk_len += (CHUNK_HEADER_LEN + payload.len()) as u64;
            self.section.raw_len += raw_len as u64;
            self.section.nchunks += 1;
        }
        self.buf.clear();
    }

    /// Flush the trailing partial chunk and return the section's stats,
    /// or the first latched I/O error.
    pub fn finish_section(mut self) -> Result<ChunkedSection, std::io::Error> {
        self.flush_chunk();
        match self.io_err {
            Some(e) => Err(e),
            None => Ok(self.section),
        }
    }
}

impl<W: Write> SectionSink for ChunkWriter<'_, W> {
    fn put_raw(&mut self, b: &[u8]) {
        let mut rest = b;
        while !rest.is_empty() {
            let room = self.chunk_len - self.buf.len();
            let take = room.min(rest.len());
            self.buf.extend_from_slice(&rest[..take]);
            rest = &rest[take..];
            if self.buf.len() == self.chunk_len {
                self.flush_chunk();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_stream_roundtrip() {
        let mut file: Vec<u8> = Vec::new();
        let mut w = ChunkWriter::new(&mut file, 4096);
        // > 3 chunks of structured data.
        for i in 0..4000u64 {
            w.put_u64(i);
            w.put_f64(i as f64 * 0.5);
        }
        let sec = w.finish_section().expect("no io errors");
        assert!(sec.nchunks > 3, "expected multiple chunks: {sec:?}");
        assert_eq!(sec.raw_len, 4000 * 16);
        assert!(sec.disk_len < sec.raw_len, "compressible data must shrink");
        let raw = section_raw_bytes(
            0,
            Section::Entities,
            &file,
            0,
            sec.disk_len,
            sec.raw_len,
            sec.nchunks,
        )
        .expect("reassemble");
        let mut r = pumi_pcu::MsgReader::from_vec(raw);
        for i in 0..4000u64 {
            assert_eq!(r.try_get_u64().unwrap(), i);
            assert_eq!(r.try_get_f64().unwrap(), i as f64 * 0.5);
        }
        assert!(r.is_done());
    }

    #[test]
    fn values_straddle_chunk_boundaries() {
        let mut file: Vec<u8> = Vec::new();
        let mut w = ChunkWriter::new(&mut file, 4096);
        // 9-byte records guarantee straddles of the 4096-byte boundary.
        for i in 0..2000u64 {
            w.put_u8(i as u8);
            w.put_u64(i);
        }
        let sec = w.finish_section().expect("io");
        let raw = section_raw_bytes(
            3,
            Section::Tags,
            &file,
            0,
            sec.disk_len,
            sec.raw_len,
            sec.nchunks,
        )
        .expect("reassemble");
        let mut r = pumi_pcu::MsgReader::from_vec(raw);
        for i in 0..2000u64 {
            assert_eq!(r.try_get_u8().unwrap(), i as u8);
            assert_eq!(r.try_get_u64().unwrap(), i);
        }
    }

    #[test]
    fn flipped_payload_bit_names_chunk() {
        let mut file: Vec<u8> = Vec::new();
        let mut w = ChunkWriter::new(&mut file, 4096);
        for i in 0..4000u64 {
            w.put_u64(i);
        }
        let sec = w.finish_section().expect("io");
        // Corrupt a byte inside the second chunk's payload.
        let hdr0 = parse_chunk_header(1, Section::Fields, 0, &file).unwrap();
        let c1_at = CHUNK_HEADER_LEN + hdr0.disk_payload_len();
        file[c1_at + CHUNK_HEADER_LEN + 5] ^= 0x08;
        let err = section_raw_bytes(
            1,
            Section::Fields,
            &file,
            0,
            sec.disk_len,
            sec.raw_len,
            sec.nchunks,
        )
        .expect_err("corruption must surface");
        match err {
            IoError::BadChunk {
                part: 1,
                section: Section::Fields,
                chunk: 1,
                ref detail,
            } => assert!(detail.contains("CRC"), "{detail}"),
            other => panic!("expected BadChunk(chunk 1), got {other:?}"),
        }
    }

    #[test]
    fn wrong_raw_len_names_chunk() {
        let mut file: Vec<u8> = Vec::new();
        let mut w = ChunkWriter::new(&mut file, 4096);
        for i in 0..4000u64 {
            w.put_u64(i % 17);
        }
        let sec = w.finish_section().expect("io");
        // Shrink chunk 0's promised raw length; the CRC (payload-only) still
        // passes, so the decompressed-length comparison must catch it.
        let bogus = (4096u32 - 9).to_le_bytes();
        file[0..4].copy_from_slice(&bogus);
        let err = section_raw_bytes(
            2,
            Section::Entities,
            &file,
            0,
            sec.disk_len,
            sec.raw_len,
            sec.nchunks,
        )
        .expect_err("length lie must surface");
        assert!(
            matches!(
                err,
                IoError::BadChunk {
                    part: 2,
                    section: Section::Entities,
                    chunk: 0,
                    ..
                }
            ),
            "got {err:?}"
        );
    }

    #[test]
    fn truncated_chunk_names_chunk() {
        let mut file: Vec<u8> = Vec::new();
        let mut w = ChunkWriter::new(&mut file, 4096);
        for i in 0..4000u64 {
            w.put_u64(i);
        }
        let sec = w.finish_section().expect("io");
        let cut = file.len() - 20;
        let err = section_raw_bytes(
            4,
            Section::Remotes,
            &file[..cut],
            0,
            sec.disk_len,
            sec.raw_len,
            sec.nchunks,
        )
        .expect_err("truncation must surface");
        // Either the section bound or the last chunk's payload is short —
        // both carry the typed location.
        match err {
            IoError::Truncated { part: 4, .. } => {}
            IoError::BadChunk { part: 4, .. } => {}
            other => panic!("expected Truncated/BadChunk, got {other:?}"),
        }
    }
}
