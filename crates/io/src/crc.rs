//! CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`), table-driven.
//!
//! The workspace builds fully offline, so the checksum is implemented here
//! rather than pulled from crates.io. Every `.pmb` section payload and the
//! header + section table carry one of these; a flipped bit anywhere in a
//! checkpoint surfaces as a typed [`crate::IoError`] instead of garbage
//! entities.

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// The CRC-32 of `data` (init all-ones, final xor — the zlib/PNG variant).
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The classic check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn sensitive_to_single_bit() {
        let a = crc32(&[0u8; 64]);
        let mut buf = [0u8; 64];
        buf[40] ^= 1;
        assert_ne!(crc32(&buf), a);
    }
}
