//! Partition-invariant structural hashing.
//!
//! [`struct_hash`] folds every *owned, non-ghost* entity of the distributed
//! mesh — its global id, topology, classification, geometry (coordinates
//! for vertices, vertex gids otherwise) and tag values — into one `u64`.
//! Ownership is unique across parts, so each entity contributes exactly
//! once regardless of how the mesh is partitioned: a checkpoint written on
//! N parts and restored on M ranks must hash identically. The roundtrip
//! property test and the `checkpoint_restart` bench both key on this.

use pumi_core::DistMesh;
use pumi_pcu::Comm;
use pumi_util::Dim;

const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(FNV_OFFSET)
    }
    fn mix(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }
    fn mix_u64(&mut self, x: u64) {
        self.mix(&x.to_le_bytes());
    }
}

/// A global, partition-invariant hash of the distributed mesh's owned
/// entities (structure, geometry, and tag values). Collective.
///
/// # Examples
///
/// The same serial mesh distributed two different ways hashes identically:
///
/// ```
/// use pumi_core::{distribute, PartMap};
/// use pumi_io::struct_hash;
/// use pumi_util::PartId;
///
/// let run = |split_at: f64| {
///     pumi_pcu::execute(2, |c| {
///         let serial = pumi_meshgen::tri_rect(4, 4, 1.0, 1.0);
///         let d = serial.elem_dim_t();
///         let mut labels = vec![0 as PartId; serial.index_space(d)];
///         for e in serial.iter(d) {
///             labels[e.idx()] = u32::from(serial.centroid(e)[0] >= split_at) as PartId;
///         }
///         let dm = distribute(c, PartMap::contiguous(2, 2), &serial, &labels);
///         struct_hash(c, &dm)
///     })[0]
/// };
/// assert_eq!(run(0.25), run(0.75));
/// ```
pub fn struct_hash(comm: &Comm, dm: &DistMesh) -> u64 {
    let mut acc = 0u64;
    let mut buf = Vec::new();
    for part in &dm.parts {
        let elem_dim = part.mesh.elem_dim();
        for d in 0..=elem_dim {
            let dim = Dim::from_usize(d);
            for e in part.mesh.iter(dim) {
                if part.is_ghost(e) || !part.is_owned(e) {
                    continue;
                }
                let mut h = Fnv::new();
                h.mix(&[d as u8, part.mesh.topo(e).to_u8()]);
                h.mix_u64(part.gid_of(e));
                h.mix(&part.mesh.class_of(e).0.to_le_bytes());
                if d == 0 {
                    for x in part.mesh.coords(e) {
                        h.mix_u64(x.to_bits());
                    }
                } else {
                    let mut vgids: Vec<u64> = part
                        .mesh
                        .verts_of(e)
                        .iter()
                        .map(|&v| part.gid_of(pumi_util::MeshEnt::vertex(v)))
                        .collect();
                    vgids.sort_unstable();
                    for g in vgids {
                        h.mix_u64(g);
                    }
                }
                let tm = part.mesh.tags();
                let mut rows: Vec<(String, Vec<u8>)> = tm
                    .collect(e)
                    .into_iter()
                    .filter(|(tid, _)| !tm.name(*tid).starts_with(crate::FIELD_TAG_PREFIX))
                    .map(|(tid, data)| {
                        buf.clear();
                        data.encode(&mut buf);
                        (tm.name(tid).to_string(), buf.clone())
                    })
                    .collect();
                rows.sort();
                for (name, enc) in rows {
                    h.mix(name.as_bytes());
                    h.mix(&enc);
                }
                acc = acc.wrapping_add(h.0 | 1);
            }
        }
    }
    // Per-entity hashes are combined with *wrapping* addition — overflow is
    // expected and fine (the sum is order-free either way), so the checked
    // `allreduce_sum_u64` cannot be used. Gather to rank 0, wrap-sum,
    // broadcast back.
    let le_u64 = |b: &[u8]| {
        let mut le = [0u8; 8];
        le.copy_from_slice(b);
        u64::from_le_bytes(le)
    };
    let gathered = comm.gather_bytes(0, bytes::Bytes::from(acc.to_le_bytes().to_vec()));
    let total = gathered
        .map(|parts| {
            parts
                .iter()
                .fold(0u64, |sum, b| sum.wrapping_add(le_u64(b)))
        })
        .unwrap_or(0);
    let out = comm.bcast_bytes(0, bytes::Bytes::from(total.to_le_bytes().to_vec()));
    le_u64(&out)
}
