//! Typed checkpoint I/O errors.
//!
//! Corruption is a *recoverable* condition: a bad checksum or truncated
//! section yields an [`IoError`] naming the damaged part and section, never
//! a panic. Collective entry points agree on failure across ranks — ranks
//! without a local error return [`IoError::PeerFailed`] so no rank is left
//! blocked in an exchange.

use pumi_util::PartId;
use std::path::PathBuf;

/// The sections of a `.pmb` part file, in file order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Section {
    /// Entities per dimension: gid, topology, classification, ghost
    /// provenance, coordinates / vertex gids.
    Entities,
    /// Part-boundary entities with their residence part sets.
    Remotes,
    /// Tag declarations and per-entity values.
    Tags,
    /// `pumi-field` fields: descriptors and per-node values.
    Fields,
    /// Delta checkpoints only: gids of entities deleted since the base
    /// snapshot, per dimension.
    Deleted,
}

impl Section {
    /// The full-snapshot sections in file order (a delta part file appends
    /// [`Section::Deleted`] after these).
    pub const ALL: [Section; 4] = [
        Section::Entities,
        Section::Remotes,
        Section::Tags,
        Section::Fields,
    ];

    /// Stable on-disk code.
    pub fn to_u8(self) -> u8 {
        match self {
            Section::Entities => 0,
            Section::Remotes => 1,
            Section::Tags => 2,
            Section::Fields => 3,
            Section::Deleted => 4,
        }
    }

    /// Decode an on-disk code.
    pub fn from_u8(x: u8) -> Option<Section> {
        match x {
            0 => Some(Section::Entities),
            1 => Some(Section::Remotes),
            2 => Some(Section::Tags),
            3 => Some(Section::Fields),
            4 => Some(Section::Deleted),
            _ => None,
        }
    }

    /// Human-readable section name (used in error messages).
    pub fn name(self) -> &'static str {
        match self {
            Section::Entities => "entities",
            Section::Remotes => "remotes",
            Section::Tags => "tags",
            Section::Fields => "fields",
            Section::Deleted => "deleted",
        }
    }
}

/// A checkpoint read/write failure. Every variant that concerns a part file
/// names the part (and where applicable the section) so an operator can
/// identify the damaged file.
#[derive(Debug)]
pub enum IoError {
    /// An OS-level I/O failure (open/read/write/create).
    Io {
        /// The path involved.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
    /// The manifest is missing, unreadable, or malformed.
    Manifest {
        /// The manifest path (as resolved on the failing rank).
        path: PathBuf,
        /// What went wrong.
        detail: String,
    },
    /// A part file's header or section table is damaged (bad magic,
    /// unsupported version, truncated or checksum-failing header bytes).
    Header {
        /// The part whose file is damaged.
        part: PartId,
        /// What went wrong.
        detail: String,
    },
    /// A section payload failed its CRC-32 — the file was corrupted at rest.
    BadChecksum {
        /// The part whose file is damaged.
        part: PartId,
        /// The damaged section.
        section: Section,
    },
    /// A section extends past the end of the file — the file was truncated.
    Truncated {
        /// The part whose file is damaged.
        part: PartId,
        /// The truncated section.
        section: Section,
        /// Bytes the section table promised.
        needed: u64,
        /// Bytes actually present.
        have: u64,
    },
    /// A compressed chunk of a `.pmb` v2 section is damaged: truncated,
    /// payload CRC mismatch, failed decompression, or a decompressed-length
    /// disagreement with its header. Names part, section, and chunk index.
    BadChunk {
        /// The part whose file is damaged.
        part: PartId,
        /// The section containing the damaged chunk.
        section: Section,
        /// Zero-based chunk index within the section.
        chunk: u32,
        /// What went wrong.
        detail: String,
    },
    /// A section passed its checksum but does not decode — a writer/reader
    /// disagreement (or a deliberate format attack).
    Decode {
        /// The part whose file is damaged.
        part: PartId,
        /// The undecodable section.
        section: Section,
        /// What went wrong.
        detail: String,
    },
    /// Another rank reported a failure; this rank's local work was fine.
    /// Collective calls return this so every rank exits the operation
    /// together instead of deadlocking in a later exchange.
    PeerFailed {
        /// Number of ranks reporting failure.
        failures: u64,
    },
    /// The restored mesh failed `pumi_core::verify` (empty on ranks whose
    /// local parts were clean; the count is global).
    Verify {
        /// This rank's violations.
        errors: Vec<String>,
    },
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io { path, source } => write!(f, "i/o error on {}: {source}", path.display()),
            IoError::Manifest { path, detail } => {
                write!(f, "bad manifest {}: {detail}", path.display())
            }
            IoError::Header { part, detail } => {
                write!(f, "part {part}: damaged header: {detail}")
            }
            IoError::BadChecksum { part, section } => {
                write!(f, "part {part}: section '{}' failed CRC-32", section.name())
            }
            IoError::Truncated {
                part,
                section,
                needed,
                have,
            } => write!(
                f,
                "part {part}: section '{}' truncated: need {needed} bytes, have {have}",
                section.name()
            ),
            IoError::BadChunk {
                part,
                section,
                chunk,
                detail,
            } => write!(
                f,
                "part {part}: section '{}' chunk {chunk} damaged: {detail}",
                section.name()
            ),
            IoError::Decode {
                part,
                section,
                detail,
            } => write!(
                f,
                "part {part}: section '{}' does not decode: {detail}",
                section.name()
            ),
            IoError::PeerFailed { failures } => {
                write!(f, "{failures} peer rank(s) reported checkpoint failures")
            }
            IoError::Verify { errors } => write!(
                f,
                "restored mesh failed verification ({} local violations)",
                errors.len()
            ),
        }
    }
}

impl std::error::Error for IoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IoError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn section_codes_roundtrip() {
        for s in Section::ALL {
            assert_eq!(Section::from_u8(s.to_u8()), Some(s));
        }
        assert_eq!(Section::from_u8(200), None);
    }

    #[test]
    fn errors_name_part_and_section() {
        let e = IoError::BadChecksum {
            part: 7,
            section: Section::Tags,
        };
        let msg = e.to_string();
        assert!(msg.contains("part 7") && msg.contains("tags"), "{msg}");
        let e = IoError::Truncated {
            part: 3,
            section: Section::Entities,
            needed: 100,
            have: 40,
        };
        let msg = e.to_string();
        assert!(msg.contains("part 3") && msg.contains("entities"), "{msg}");
    }
}
