//! Parallel checkpoint writer.
//!
//! Each rank serializes its local parts — entities, partition-model
//! residence data, ghost provenance, tags, and fields — into one `.pmb`
//! file per part; rank 0 then writes the manifest. The call is collective
//! and fallible: local write failures are agreed across ranks (one
//! allreduce) so every rank returns an `Err` together instead of leaving
//! peers blocked in the manifest reduction.
//!
//! Two container versions share one set of section encoders (generic over
//! [`SectionSink`]): v1 buffers each section in memory and writes a flat
//! file; v2 (the default) streams LZ4-compressed, CRC'd chunks straight to
//! disk, so peak memory is one chunk regardless of part size.

use crate::chunk::{ChunkWriter, SectionSink, DEFAULT_CHUNK_LEN};
use crate::error::{IoError, Section};
use crate::format::{
    encode_header_v2, encode_manifest, encode_part_file, encode_table_v2, part_file_path,
    FieldDesc, Manifest, SectionEntryV2, FORMAT_VERSION, FORMAT_VERSION_V2, HEADER_V2_LEN,
    MANIFEST_FILE,
};
use crate::FIELD_TAG_PREFIX;
use bytes::Bytes;
use pumi_core::DistMesh;
use pumi_field::{DistField, Field};
use pumi_pcu::{Comm, MsgWriter};
use pumi_util::tag::TagKind;
use pumi_util::{Dim, MeshEnt, PartId};
use std::io::{BufWriter, Seek, SeekFrom, Write};
use std::path::Path;

/// Statistics from a completed checkpoint write.
#[derive(Debug, Clone, Copy, Default)]
pub struct WriteStats {
    /// Bytes this rank wrote (part files only).
    pub bytes_local: u64,
    /// Bytes written across the world, including the manifest.
    pub bytes_global: u64,
    /// Part files this rank wrote.
    pub parts_written: usize,
}

/// Options for [`write_checkpoint_with`].
#[derive(Debug, Clone, Copy)]
pub struct WriteOpts {
    /// Container version: [`FORMAT_VERSION`] (flat, uncompressed) or
    /// [`FORMAT_VERSION_V2`] (chunked, compressed, streaming).
    pub version: u32,
    /// Raw bytes per chunk for v2 (clamped to ≥ 4 KiB).
    pub chunk_len: usize,
}

impl Default for WriteOpts {
    fn default() -> Self {
        WriteOpts {
            version: FORMAT_VERSION_V2,
            chunk_len: DEFAULT_CHUNK_LEN,
        }
    }
}

fn encode_entities(part: &pumi_core::Part, w: &mut dyn SectionSink) {
    let elem_dim = part.mesh.elem_dim();
    for d in 0..=elem_dim {
        let dim = Dim::from_usize(d);
        w.put_u32(part.mesh.count(dim) as u32);
        for e in part.mesh.iter(dim) {
            w.put_u64(part.gid_of(e));
            w.put_u8(part.mesh.topo(e).to_u8());
            w.put_u32(part.mesh.class_of(e).0);
            match part.ghost_source(e) {
                Some((src, _)) => {
                    w.put_u8(1);
                    w.put_u32(src);
                }
                None => w.put_u8(0),
            }
            if d == 0 {
                let x = part.mesh.coords(e);
                w.put_f64(x[0]);
                w.put_f64(x[1]);
                w.put_f64(x[2]);
            } else {
                let vgids: Vec<u64> = part
                    .mesh
                    .verts_of(e)
                    .iter()
                    .map(|&v| part.gid_of(MeshEnt::vertex(v)))
                    .collect();
                w.put_u64_slice(&vgids);
            }
        }
    }
}

fn encode_remotes(part: &pumi_core::Part, w: &mut dyn SectionSink) {
    let shared = part.shared_entities();
    w.put_u32(shared.len() as u32);
    for (e, _) in shared {
        w.put_u8(e.dim().as_usize() as u8);
        w.put_u64(part.gid_of(e));
        w.put_u32_slice(&part.residence(e));
    }
}

fn encode_tags(part: &pumi_core::Part, w: &mut dyn SectionSink) {
    let tm = part.mesh.tags();
    let elem_dim = part.mesh.elem_dim();
    // Collect rows first: the declared count can exceed the live-entity
    // rows, and internal "__io:" staging tags must not persist.
    let mut per_tag = Vec::new();
    for tid in tm.tags() {
        if tm.name(tid).starts_with(FIELD_TAG_PREFIX) || tm.count(tid) == 0 {
            continue;
        }
        let mut rows = Vec::new();
        for d in 0..=elem_dim {
            let dim = Dim::from_usize(d);
            for e in part.mesh.iter(dim) {
                if let Some(data) = tm.get(tid, e) {
                    rows.push((d as u8, part.gid_of(e), data));
                }
            }
        }
        if !rows.is_empty() {
            per_tag.push((tid, rows));
        }
    }
    w.put_u32(per_tag.len() as u32);
    let mut buf = Vec::new();
    for (tid, rows) in per_tag {
        w.put_bytes(tm.name(tid).as_bytes());
        w.put_u8(match tm.kind(tid) {
            TagKind::Int => 0,
            TagKind::Double => 1,
            TagKind::Bytes => 2,
        });
        w.put_u32(tm.len_of(tid) as u32);
        w.put_u32(rows.len() as u32);
        for (d, gid, data) in rows {
            w.put_u8(d);
            w.put_u64(gid);
            buf.clear();
            data.encode(&mut buf);
            w.put_bytes(&buf);
        }
    }
}

fn encode_fields(part: &pumi_core::Part, fields: &[&Field], w: &mut dyn SectionSink) {
    let elem_dim = part.mesh.elem_dim();
    w.put_u32(fields.len() as u32);
    for f in fields {
        w.put_bytes(f.name.as_bytes());
        w.put_u8(crate::format::shape_to_u8(f.shape));
        w.put_u32(f.ncomp as u32);
        let mut rows = Vec::new();
        for d in f.shape.node_dims(elem_dim) {
            for e in part.mesh.iter(d) {
                if let Some(v) = f.get(e) {
                    rows.push((d.as_usize() as u8, part.gid_of(e), v));
                }
            }
        }
        w.put_u32(rows.len() as u32);
        for (d, gid, v) in rows {
            w.put_u8(d);
            w.put_u64(gid);
            w.put_f64_slice(v);
        }
    }
}

fn finish_section_bytes(f: impl FnOnce(&mut dyn SectionSink)) -> Bytes {
    let mut w = MsgWriter::new();
    f(&mut w);
    w.finish()
}

/// Serialize one part (plus its slice of each field) to v1 `.pmb` file
/// bytes (flat sections, whole image in memory).
pub fn encode_part(part: &pumi_core::Part, fields: &[&Field]) -> Vec<u8> {
    let sections = vec![
        (
            Section::Entities,
            finish_section_bytes(|w| encode_entities(part, w)),
        ),
        (
            Section::Remotes,
            finish_section_bytes(|w| encode_remotes(part, w)),
        ),
        (
            Section::Tags,
            finish_section_bytes(|w| encode_tags(part, w)),
        ),
        (
            Section::Fields,
            finish_section_bytes(|w| encode_fields(part, fields, w)),
        ),
    ];
    encode_part_file(
        part.id,
        part.mesh.elem_dim() as u32,
        part.gid_counter(),
        &sections,
    )
}

/// A section's identity plus the encoder that produces its content.
pub(crate) type SectionEnc<'a> = (Section, Box<dyn Fn(&mut dyn SectionSink) + 'a>);

/// Stream a v2 part file to `path`: placeholder header, chunked sections
/// (each encoder runs once, its output compressed and flushed chunk by
/// chunk), the table, then a seek-back header rewrite with the table's
/// landing spot. Returns total file bytes.
pub(crate) fn write_part_file_v2(
    path: &Path,
    part_id: PartId,
    elem_dim: u32,
    gid_counter: u64,
    flags: u32,
    chunk_len: usize,
    sections: &[SectionEnc<'_>],
) -> Result<u64, IoError> {
    let io_err = |source: std::io::Error| IoError::Io {
        path: path.to_path_buf(),
        source,
    };
    let file = std::fs::File::create(path).map_err(io_err)?;
    let mut out = BufWriter::new(file);
    out.write_all(&[0u8; HEADER_V2_LEN]).map_err(io_err)?;
    let mut offset = HEADER_V2_LEN as u64;
    let mut entries = Vec::with_capacity(sections.len());
    for (section, enc) in sections {
        let mut cw = ChunkWriter::new(&mut out, chunk_len);
        enc(&mut cw);
        let st = cw.finish_section().map_err(io_err)?;
        entries.push(SectionEntryV2 {
            section: *section,
            offset,
            disk_len: st.disk_len,
            raw_len: st.raw_len,
            nchunks: st.nchunks,
        });
        offset += st.disk_len;
    }
    let table = encode_table_v2(&entries);
    out.write_all(&table).map_err(io_err)?;
    let hdr = encode_header_v2(
        part_id,
        elem_dim,
        gid_counter,
        flags,
        offset,
        table.len() as u32,
    );
    out.seek(SeekFrom::Start(0)).map_err(io_err)?;
    out.write_all(&hdr).map_err(io_err)?;
    out.flush().map_err(io_err)?;
    Ok(offset + table.len() as u64)
}

/// The four full-snapshot sections of one part, as v2 encoders.
fn full_sections<'a>(part: &'a pumi_core::Part, pfields: &'a [&'a Field]) -> Vec<SectionEnc<'a>> {
    vec![
        (
            Section::Entities,
            Box::new(move |w: &mut dyn SectionSink| encode_entities(part, w)),
        ),
        (
            Section::Remotes,
            Box::new(move |w: &mut dyn SectionSink| encode_remotes(part, w)),
        ),
        (
            Section::Tags,
            Box::new(move |w: &mut dyn SectionSink| encode_tags(part, w)),
        ),
        (
            Section::Fields,
            Box::new(move |w: &mut dyn SectionSink| encode_fields(part, pfields, w)),
        ),
    ]
}

/// Write a checkpoint of `dm` (and the given fields, each aligned with
/// `dm.parts`) into directory `dir`. Collective; every rank must call with
/// the same `dir` and field list. Returns per-rank statistics.
///
/// On failure every rank returns an error: ranks with a local failure get
/// the specific [`IoError`], the rest get [`IoError::PeerFailed`].
///
/// # Examples
///
/// A write → read roundtrip preserves the mesh bit-for-bit:
///
/// ```
/// use pumi_core::{distribute, PartMap};
/// use pumi_io::{read_checkpoint, struct_hash, write_checkpoint};
/// use pumi_util::PartId;
///
/// let dir = std::env::temp_dir().join(format!("pumi-io-doc-{}", std::process::id()));
/// pumi_pcu::execute(2, |c| {
///     let serial = pumi_meshgen::tri_rect(4, 4, 1.0, 1.0);
///     let labels = vec![0 as PartId; serial.index_space(serial.elem_dim_t())];
///     let dm = distribute(c, PartMap::contiguous(1, 2), &serial, &labels);
///     write_checkpoint(c, &dm, &[], &dir).expect("write");
///     let restored = read_checkpoint(c, &dir).expect("read");
///     assert_eq!(struct_hash(c, &dm), struct_hash(c, &restored.dm));
/// });
/// std::fs::remove_dir_all(&dir).ok();
/// ```
pub fn write_checkpoint(
    comm: &Comm,
    dm: &DistMesh,
    fields: &[&DistField],
    dir: &Path,
) -> Result<WriteStats, IoError> {
    write_checkpoint_with(comm, dm, fields, dir, &WriteOpts::default())
}

/// [`write_checkpoint`] with explicit container options (format version,
/// chunk size). `opts` must agree across ranks.
pub fn write_checkpoint_with(
    comm: &Comm,
    dm: &DistMesh,
    fields: &[&DistField],
    dir: &Path,
    opts: &WriteOpts,
) -> Result<WriteStats, IoError> {
    let _span = pumi_obs::span!("io.write");
    assert!(
        opts.version == FORMAT_VERSION || opts.version == FORMAT_VERSION_V2,
        "unknown .pmb version {}",
        opts.version
    );
    for df in fields {
        assert_eq!(df.len(), dm.parts.len(), "field not aligned with dm.parts");
    }
    let mut local_err: Option<IoError> = None;
    if let Err(e) = std::fs::create_dir_all(dir) {
        local_err = Some(IoError::Io {
            path: dir.to_path_buf(),
            source: e,
        });
    }
    let mut bytes_local = 0u64;
    let mut parts_written = 0usize;
    if local_err.is_none() {
        for (slot, part) in dm.parts.iter().enumerate() {
            let pfields: Vec<&Field> = fields.iter().map(|df| &df[slot]).collect();
            let path = part_file_path(dir, part.id);
            let wrote = if opts.version == FORMAT_VERSION {
                let data = encode_part(part, &pfields);
                std::fs::write(&path, &data)
                    .map(|()| data.len() as u64)
                    .map_err(|e| IoError::Io { path, source: e })
            } else {
                let sections = full_sections(part, &pfields);
                write_part_file_v2(
                    &path,
                    part.id,
                    part.mesh.elem_dim() as u32,
                    part.gid_counter(),
                    0,
                    opts.chunk_len,
                    &sections,
                )
            };
            match wrote {
                Ok(n) => {
                    bytes_local += n;
                    parts_written += 1;
                }
                Err(e) => {
                    local_err = Some(e);
                    break;
                }
            }
        }
    }
    pumi_obs::metrics::counter_add("io.write.bytes", bytes_local);

    // Agree on part-file failures before any further collective.
    let failures = comm.allreduce_sum_u64(local_err.is_some() as u64);
    if failures > 0 {
        return Err(local_err.unwrap_or(IoError::PeerFailed { failures }));
    }

    // Manifest inputs: global owned counts, ghost presence, field
    // descriptors (identical on every rank by the SPMD contract).
    let mut owned = [0u64; 4];
    for p in &dm.parts {
        for (d, o) in owned.iter_mut().enumerate() {
            let dim = Dim::from_usize(d);
            *o += p
                .mesh
                .iter(dim)
                .filter(|&e| !p.is_ghost(e) && p.is_owned(e))
                .count() as u64;
        }
    }
    let owned_counts: Vec<u64> = comm.allreduce_sum_u64_vec(&owned);
    let any_ghosts = comm.allreduce_max_u64(dm.parts.iter().any(|p| p.num_ghosts() > 0) as u64) > 0;
    let elem_dim = dm.parts.first().map(|p| p.mesh.elem_dim()).unwrap_or(2);
    let elem_dim = comm.allreduce_max_u64(elem_dim as u64) as u32;

    // Gather field descriptors to rank 0: a rank may host zero parts, so
    // rank 0 takes the first non-empty descriptor list it receives.
    let mut dw = MsgWriter::new();
    let local_descs: Vec<FieldDesc> = fields
        .iter()
        .filter_map(|df| df.first())
        .map(|f| FieldDesc {
            name: f.name.clone(),
            shape: f.shape,
            ncomp: f.ncomp as u32,
        })
        .collect();
    dw.put_u32(local_descs.len() as u32);
    for d in &local_descs {
        dw.put_bytes(d.name.as_bytes());
        dw.put_u8(crate::format::shape_to_u8(d.shape));
        dw.put_u32(d.ncomp);
    }
    let gathered = comm.gather_bytes(0, dw.finish());

    let mut manifest_err: Option<IoError> = None;
    let mut manifest_bytes = 0u64;
    if comm.rank() == 0 {
        let mut descs = local_descs;
        if descs.is_empty() {
            for blob in gathered.unwrap_or_default() {
                let mut r = pumi_pcu::MsgReader::from_vec(blob.to_vec());
                let n = r.try_get_u32().unwrap_or(0);
                if n == 0 {
                    continue;
                }
                for _ in 0..n {
                    let (name, code, ncomp) =
                        match (r.try_get_bytes(), r.try_get_u8(), r.try_get_u32()) {
                            (Ok(n), Ok(c), Ok(k)) => (n, c, k),
                            _ => break,
                        };
                    if let (Ok(name), Some(shape)) =
                        (String::from_utf8(name), crate::format::shape_from_u8(code))
                    {
                        descs.push(FieldDesc { name, shape, ncomp });
                    }
                }
                break;
            }
        }
        let manifest = Manifest {
            version: opts.version,
            nparts: dm.map.nparts() as u32,
            elem_dim,
            nranks_at_write: comm.nranks() as u32,
            owned_counts: [
                owned_counts[0],
                owned_counts[1],
                owned_counts[2],
                owned_counts[3],
            ],
            has_ghosts: any_ghosts,
            fields: descs,
            delta_count: 0,
        };
        let data = encode_manifest(&manifest);
        let path = dir.join(MANIFEST_FILE);
        match std::fs::write(&path, &data) {
            Ok(()) => manifest_bytes = data.len() as u64,
            Err(e) => manifest_err = Some(IoError::Io { path, source: e }),
        }
    }
    let failures = comm.allreduce_sum_u64(manifest_err.is_some() as u64);
    if failures > 0 {
        return Err(manifest_err.unwrap_or(IoError::PeerFailed { failures }));
    }
    let bytes_global = comm.allreduce_sum_u64(bytes_local + manifest_bytes);
    Ok(WriteStats {
        bytes_local,
        bytes_global,
        parts_written,
    })
}
