//! # pumi-io: partitioned mesh checkpoint/restart
//!
//! A versioned binary format (`.pmb`) and parallel writer/reader for
//! distributed meshes, following the PUMI philosophy that the file
//! partition *is* the mesh partition: each part serializes to its own
//! file, and a small manifest (written by rank 0) records the global
//! shape of the checkpoint.
//!
//! ```text
//! checkpoint-dir/
//!   manifest.pmb       nparts, elem_dim, owned counts, field descriptors
//!   part_00000.pmb     entities | remotes | tags | fields   (+ CRC-32s)
//!   part_00001.pmb
//!   ...
//! ```
//!
//! The reader restores an N-part checkpoint onto **any** M ranks:
//! remote-copy links are rebuilt from global ids with one phased
//! exchange, and when N ≠ M the mesh is redistributed through the
//! migration path (merging part blocks when N > M, splitting with the
//! local graph partitioner when N < M). Corruption anywhere — a flipped
//! bit, a truncated file, a damaged header — surfaces as a typed
//! [`IoError`] naming the part and section, never a panic.
//!
//! Write and read are collective; `io.write` / `io.read` /
//! `io.redistribute` spans and byte counters thread through `pumi-obs`.

#![warn(missing_docs)]

pub mod chunk;
pub mod crc;
pub mod delta;
pub mod error;
pub mod format;
pub mod hash;
pub mod read;
pub mod write;

/// Tag-name prefix for internal staging tags (field values ride migration
/// as tags during an N→M restore). Never written to disk.
pub(crate) const FIELD_TAG_PREFIX: &str = "__io:f:";

/// Name of the staging tag that carries field `name`'s node values during
/// restore. [`load_standalone_part`] leaves field data under this tag;
/// `pumi-serve` and the collective reader both recover fields from it.
pub fn staged_field_tag(name: &str) -> String {
    format!("{FIELD_TAG_PREFIX}{name}")
}

pub use delta::{write_delta_checkpoint, write_delta_checkpoint_with, DeltaOpts};
pub use error::{IoError, Section};
pub use format::{FieldDesc, Manifest, FORMAT_VERSION, FORMAT_VERSION_V2, MANIFEST_FILE};
pub use hash::struct_hash;
pub use read::{
    load_standalone_part, read_checkpoint, read_checkpoint_with, ReadOpts, ReadStats, Restored,
    SectionSource,
};
pub use write::{write_checkpoint, write_checkpoint_with, WriteOpts, WriteStats};
