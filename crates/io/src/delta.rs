//! Delta checkpoints: persist only what changed since the last snapshot.
//!
//! After a full v2 checkpoint, each part can keep a
//! [`pumi_core::DirtyLog`] of mutations (adapt rounds, migrations, field
//! updates). [`write_delta_checkpoint`] drains those logs into
//! `delta_<k:04>/part_*.pmb` files under the base checkpoint directory —
//! v2 part files with [`FLAG_DELTA`] set whose Entities/Tags/Fields
//! sections carry *only* the dirty entities, plus a Deleted section of
//! per-dimension gid lists and a full Remotes section (boundary links are
//! global state and cheap relative to entities). The manifest's
//! `delta_count` is bumped last, so a crash mid-delta leaves the previous
//! restore point intact.
//!
//! Restore replays deltas per part *before* the N→M stitching, so a
//! checkpoint with deltas restores onto any rank count exactly like a
//! fresh full snapshot: deletions first (high dimension to low), then
//! entity upserts (vertices to elements), then tag/field value upserts by
//! gid, then wholesale remote-link replacement.

use crate::chunk::SectionSink;
use crate::error::{IoError, Section};
use crate::format::{
    delta_dir, parse_part_any, part_file_path, AnyPartHeader, Manifest, FLAG_DELTA,
    FORMAT_VERSION_V2, MANIFEST_FILE,
};
use crate::read::{decode_fields, decode_remotes, decode_tags, section_bytes, LoadedPart};
use crate::write::{write_part_file_v2, SectionEnc, WriteStats};
use crate::FIELD_TAG_PREFIX;
use pumi_core::{DirtyLog, DistMesh, Part};
use pumi_field::{DistField, Field};
use pumi_geom::GeomEnt;
use pumi_mesh::Topology;
use pumi_pcu::{Comm, MsgError, MsgReader};
use pumi_util::tag::TagKind;
use pumi_util::{Dim, FxHashMap, GlobalId, MeshEnt, PartId};
use std::path::Path;

// ---------------------------------------------------------------------
// Write side
// ---------------------------------------------------------------------

fn encode_delta_entities(part: &Part, log: &DirtyLog, w: &mut dyn SectionSink) {
    let elem_dim = part.mesh.elem_dim();
    for d in 0..=elem_dim {
        let dim = Dim::from_usize(d);
        let rows: Vec<MeshEnt> = part
            .mesh
            .iter(dim)
            .filter(|&e| log.dirty[d].contains(&part.gid_of(e)))
            .collect();
        w.put_u32(rows.len() as u32);
        for e in rows {
            w.put_u64(part.gid_of(e));
            w.put_u8(part.mesh.topo(e).to_u8());
            w.put_u32(part.mesh.class_of(e).0);
            match part.ghost_source(e) {
                Some((src, _)) => {
                    w.put_u8(1);
                    w.put_u32(src);
                }
                None => w.put_u8(0),
            }
            if d == 0 {
                let x = part.mesh.coords(e);
                w.put_f64(x[0]);
                w.put_f64(x[1]);
                w.put_f64(x[2]);
            } else {
                let vgids: Vec<u64> = part
                    .mesh
                    .verts_of(e)
                    .iter()
                    .map(|&v| part.gid_of(MeshEnt::vertex(v)))
                    .collect();
                w.put_u64_slice(&vgids);
            }
        }
    }
}

fn encode_delta_remotes(part: &Part, w: &mut dyn SectionSink) {
    let shared = part.shared_entities();
    w.put_u32(shared.len() as u32);
    for (e, _) in shared {
        w.put_u8(e.dim().as_usize() as u8);
        w.put_u64(part.gid_of(e));
        w.put_u32_slice(&part.residence(e));
    }
}

fn encode_delta_tags(part: &Part, log: &DirtyLog, w: &mut dyn SectionSink) {
    let tm = part.mesh.tags();
    let elem_dim = part.mesh.elem_dim();
    let mut per_tag = Vec::new();
    for tid in tm.tags() {
        if tm.name(tid).starts_with(FIELD_TAG_PREFIX) || tm.count(tid) == 0 {
            continue;
        }
        let mut rows = Vec::new();
        for d in 0..=elem_dim {
            let dim = Dim::from_usize(d);
            for e in part.mesh.iter(dim) {
                if !log.dirty[d].contains(&part.gid_of(e)) {
                    continue;
                }
                if let Some(data) = tm.get(tid, e) {
                    rows.push((d as u8, part.gid_of(e), data));
                }
            }
        }
        if !rows.is_empty() {
            per_tag.push((tid, rows));
        }
    }
    w.put_u32(per_tag.len() as u32);
    let mut buf = Vec::new();
    for (tid, rows) in per_tag {
        w.put_bytes(tm.name(tid).as_bytes());
        w.put_u8(match tm.kind(tid) {
            TagKind::Int => 0,
            TagKind::Double => 1,
            TagKind::Bytes => 2,
        });
        w.put_u32(tm.len_of(tid) as u32);
        w.put_u32(rows.len() as u32);
        for (d, gid, data) in rows {
            w.put_u8(d);
            w.put_u64(gid);
            buf.clear();
            data.encode(&mut buf);
            w.put_bytes(&buf);
        }
    }
}

fn encode_delta_fields(part: &Part, fields: &[&Field], log: &DirtyLog, w: &mut dyn SectionSink) {
    let elem_dim = part.mesh.elem_dim();
    w.put_u32(fields.len() as u32);
    for f in fields {
        w.put_bytes(f.name.as_bytes());
        w.put_u8(crate::format::shape_to_u8(f.shape));
        w.put_u32(f.ncomp as u32);
        let mut rows = Vec::new();
        for d in f.shape.node_dims(elem_dim) {
            for e in part.mesh.iter(d) {
                if !log.dirty[d.as_usize()].contains(&part.gid_of(e)) {
                    continue;
                }
                if let Some(v) = f.get(e) {
                    rows.push((d.as_usize() as u8, part.gid_of(e), v));
                }
            }
        }
        w.put_u32(rows.len() as u32);
        for (d, gid, v) in rows {
            w.put_u8(d);
            w.put_u64(gid);
            w.put_f64_slice(v);
        }
    }
}

fn encode_deleted(log: &DirtyLog, w: &mut dyn SectionSink) {
    for d in 0..4 {
        let mut gids: Vec<GlobalId> = log.deleted[d].iter().copied().collect();
        gids.sort_unstable();
        w.put_u64_slice(&gids);
    }
}

/// Options for [`write_delta_checkpoint`].
#[derive(Debug, Clone, Copy)]
pub struct DeltaOpts {
    /// Raw bytes per chunk (clamped to ≥ 4 KiB).
    pub chunk_len: usize,
}

impl Default for DeltaOpts {
    fn default() -> Self {
        DeltaOpts {
            chunk_len: crate::chunk::DEFAULT_CHUNK_LEN,
        }
    }
}

/// Append one delta round to the v2 checkpoint at `dir`, draining every
/// local part's [`DirtyLog`] (tracking continues into a fresh log).
/// Collective; the partition must match the base snapshot (same part ids),
/// and `dm.start_dirty_tracking()` must have been called after the base
/// write. On failure every rank returns an error together and the
/// manifest's delta count is left unchanged, so the checkpoint still
/// restores to the previous round.
pub fn write_delta_checkpoint(
    comm: &Comm,
    dm: &mut DistMesh,
    fields: &[&DistField],
    dir: &Path,
) -> Result<WriteStats, IoError> {
    write_delta_checkpoint_with(comm, dm, fields, dir, &DeltaOpts::default())
}

/// [`write_delta_checkpoint`] with explicit chunking options.
pub fn write_delta_checkpoint_with(
    comm: &Comm,
    dm: &mut DistMesh,
    fields: &[&DistField],
    dir: &Path,
    opts: &DeltaOpts,
) -> Result<WriteStats, IoError> {
    let _span = pumi_obs::span!("io.write_delta");
    for df in fields {
        assert_eq!(df.len(), dm.parts.len(), "field not aligned with dm.parts");
    }
    for p in &dm.parts {
        assert!(
            p.is_tracking_dirty(),
            "part {}: delta checkpoint without dirty tracking (call start_dirty_tracking after the base write)",
            p.id
        );
    }
    let manifest = crate::read::manifest_bcast(comm, dir)?;
    let mut local_err: Option<IoError> = None;
    if manifest.version != FORMAT_VERSION_V2 {
        local_err = Some(IoError::Manifest {
            path: dir.join(MANIFEST_FILE),
            detail: format!(
                "delta checkpoints require a v2 base (found version {})",
                manifest.version
            ),
        });
    }
    if manifest.nparts as usize != dm.map.nparts() {
        local_err = Some(IoError::Manifest {
            path: dir.join(MANIFEST_FILE),
            detail: format!(
                "partition changed since the base snapshot ({} parts now, {} in the file); write a fresh full checkpoint",
                dm.map.nparts(),
                manifest.nparts
            ),
        });
    }
    let k = manifest.delta_count + 1;
    let ddir = delta_dir(dir, k);
    if local_err.is_none() {
        if let Err(e) = std::fs::create_dir_all(&ddir) {
            local_err = Some(IoError::Io {
                path: ddir.clone(),
                source: e,
            });
        }
    }
    let mut bytes_local = 0u64;
    let mut parts_written = 0usize;
    if local_err.is_none() {
        for slot in 0..dm.parts.len() {
            let log = dm.parts[slot]
                .rotate_dirty_log()
                .expect("tracking checked above");
            let part = &dm.parts[slot];
            let pfields: Vec<&Field> = fields.iter().map(|df| &df[slot]).collect();
            let path = part_file_path(&ddir, part.id);
            let sections: Vec<SectionEnc<'_>> = vec![
                (
                    Section::Entities,
                    Box::new(|w: &mut dyn SectionSink| encode_delta_entities(part, &log, w)),
                ),
                (
                    Section::Remotes,
                    Box::new(|w: &mut dyn SectionSink| encode_delta_remotes(part, w)),
                ),
                (
                    Section::Tags,
                    Box::new(|w: &mut dyn SectionSink| encode_delta_tags(part, &log, w)),
                ),
                (
                    Section::Fields,
                    Box::new(|w: &mut dyn SectionSink| {
                        encode_delta_fields(part, &pfields, &log, w)
                    }),
                ),
                (
                    Section::Deleted,
                    Box::new(|w: &mut dyn SectionSink| encode_deleted(&log, w)),
                ),
            ];
            match write_part_file_v2(
                &path,
                part.id,
                part.mesh.elem_dim() as u32,
                part.gid_counter(),
                FLAG_DELTA,
                opts.chunk_len,
                &sections,
            ) {
                Ok(n) => {
                    bytes_local += n;
                    parts_written += 1;
                }
                Err(e) => {
                    local_err = Some(e);
                    break;
                }
            }
        }
    }
    pumi_obs::metrics::counter_add("io.write.bytes", bytes_local);
    let failures = comm.allreduce_sum_u64(local_err.is_some() as u64);
    if failures > 0 {
        return Err(local_err.unwrap_or(IoError::PeerFailed { failures }));
    }

    // Commit point: bump the manifest's delta count (rank 0).
    let mut manifest_err: Option<IoError> = None;
    let mut manifest_bytes = 0u64;
    if comm.rank() == 0 {
        let mut m = manifest;
        m.delta_count = k;
        let data = crate::format::encode_manifest(&m);
        let path = dir.join(MANIFEST_FILE);
        match std::fs::write(&path, &data) {
            Ok(()) => manifest_bytes = data.len() as u64,
            Err(e) => manifest_err = Some(IoError::Io { path, source: e }),
        }
    }
    let failures = comm.allreduce_sum_u64(manifest_err.is_some() as u64);
    if failures > 0 {
        return Err(manifest_err.unwrap_or(IoError::PeerFailed { failures }));
    }
    let bytes_global = comm.allreduce_sum_u64(bytes_local + manifest_bytes);
    Ok(WriteStats {
        bytes_local,
        bytes_global,
        parts_written,
    })
}

// ---------------------------------------------------------------------
// Replay side
// ---------------------------------------------------------------------

fn derr(part: PartId, section: Section) -> impl Fn(MsgError) -> IoError {
    move |e| IoError::Decode {
        part,
        section,
        detail: e.to_string(),
    }
}

/// Apply every delta round to a freshly-loaded base part, in order. Runs
/// per part before any stitching, so N→M restores see the final state.
pub(crate) fn replay_deltas(
    dir: &Path,
    fpart: PartId,
    manifest: &Manifest,
    lp: &mut LoadedPart,
    skip_ghosts: bool,
    remap: &impl Fn(PartId) -> PartId,
) -> Result<(), IoError> {
    let elem_dim = manifest.elem_dim as usize;
    // Ghost provenance keyed by gid: local handles can be invalidated by
    // slot reuse across deletions, gids cannot.
    let mut ghost_map: FxHashMap<(Dim, GlobalId), PartId> = lp
        .ghost_rows
        .iter()
        .map(|&(e, src)| ((e.dim(), lp.part.gid_of(e)), src))
        .collect();
    for k in 1..=manifest.delta_count {
        let path = part_file_path(&delta_dir(dir, k), fpart);
        let data = std::fs::read(&path).map_err(|e| IoError::Io {
            path: path.clone(),
            source: e,
        })?;
        let header = parse_part_any(fpart, &data)?;
        let h = match &header {
            AnyPartHeader::V2(h) if h.is_delta() => h,
            _ => {
                return Err(IoError::Header {
                    part: fpart,
                    detail: format!("delta round {k}: not a v2 delta part file"),
                })
            }
        };
        if h.elem_dim as usize != elem_dim {
            return Err(IoError::Header {
                part: fpart,
                detail: format!(
                    "delta round {k}: element dimension {} disagrees with manifest ({elem_dim})",
                    h.elem_dim
                ),
            });
        }

        apply_delta_round(
            fpart,
            &mut lp.part,
            elem_dim,
            skip_ghosts,
            &mut ghost_map,
            &mut |s| section_bytes(fpart, &data, &header, s),
        )?;

        // 4. Boundary links are replaced wholesale.
        let payload = section_bytes(fpart, &data, &header, Section::Remotes)?;
        lp.res_rows = decode_remotes(fpart, payload, remap)?;

        lp.gid_counter = lp.gid_counter.max(h.gid_counter);
        lp.bytes += data.len() as u64;
    }
    lp.ghost_rows = ghost_map
        .into_iter()
        .filter_map(|((dim, gid), src)| lp.part.find_gid(dim, gid).map(|e| (e, src)))
        .collect();
    lp.ghost_rows.sort_by_key(|&(e, _)| e);
    Ok(())
}

/// Apply one delta round's Deleted/Entities/Tags/Fields sections (fetched
/// on demand through `fetch`) to a part. Shared by the collective restore
/// ([`replay_deltas`], which also swaps the Remotes rows) and the
/// standalone slice loader behind `pumi-serve` (which has no stitching and
/// skips Remotes entirely).
pub(crate) fn apply_delta_round(
    fpart: PartId,
    part: &mut Part,
    elem_dim: usize,
    skip_ghosts: bool,
    ghost_map: &mut FxHashMap<(Dim, GlobalId), PartId>,
    fetch: &mut dyn FnMut(Section) -> Result<Vec<u8>, IoError>,
) -> Result<(), IoError> {
    // 1. Deletions, elements down to vertices.
    let payload = fetch(Section::Deleted)?;
    let e = derr(fpart, Section::Deleted);
    let mut r = MsgReader::from_vec(payload);
    let mut deleted: [Vec<GlobalId>; 4] = Default::default();
    for slot in &mut deleted {
        *slot = r.try_get_u64_slice().map_err(&e)?;
    }
    for d in (0..4).rev() {
        let dim = Dim::from_usize(d);
        for &gid in &deleted[d] {
            ghost_map.remove(&(dim, gid));
            if let Some(ent) = part.find_gid(dim, gid) {
                part.delete_entity(ent);
            }
        }
    }

    // 2. Entity upserts, vertices up to elements.
    let payload = fetch(Section::Entities)?;
    apply_entity_upserts(fpart, part, payload, elem_dim, skip_ghosts, ghost_map)?;

    // 3. Tag and field value upserts by gid.
    let payload = fetch(Section::Tags)?;
    decode_tags(fpart, part, payload, skip_ghosts)?;
    let payload = fetch(Section::Fields)?;
    decode_fields(fpart, part, payload, skip_ghosts)?;
    Ok(())
}

/// Decode a delta Entities section into the part: existing gids are
/// updated in place, new gids are created. Ghost provenance lands in
/// `ghost_map` (the caller folds it back into stitch rows).
fn apply_entity_upserts(
    fpart: PartId,
    part: &mut Part,
    payload: Vec<u8>,
    elem_dim: usize,
    skip_ghosts: bool,
    ghost_map: &mut FxHashMap<(Dim, GlobalId), PartId>,
) -> Result<(), IoError> {
    let sec = Section::Entities;
    let e = derr(fpart, sec);
    let mut r = MsgReader::from_vec(payload);
    // Entities that became ghosts on an N≠M restore are dropped like their
    // base-snapshot counterparts; deletion runs top-down after the scan.
    let mut demote: Vec<MeshEnt> = Vec::new();
    for d in 0..=elem_dim {
        let dim = Dim::from_usize(d);
        let n = r.try_get_u32().map_err(&e)?;
        for _ in 0..n {
            let gid = r.try_get_u64().map_err(&e)?;
            let topo_code = r.try_get_u8().map_err(&e)?;
            let class = r.try_get_u32().map_err(&e)?;
            let ghost = r.try_get_u8().map_err(&e)? != 0;
            let src = if ghost {
                Some(r.try_get_u32().map_err(&e)?)
            } else {
                None
            };
            let topo = Topology::try_from_u8(topo_code)
                .ok_or(MsgError::bad_enum("topology", topo_code))
                .map_err(&e)?;
            if topo.dim().as_usize() != d {
                return Err(IoError::Decode {
                    part: fpart,
                    section: sec,
                    detail: format!("topology {topo:?} in dimension-{d} block"),
                });
            }
            match src {
                Some(s) if !skip_ghosts => {
                    ghost_map.insert((dim, gid), s);
                }
                _ => {
                    ghost_map.remove(&(dim, gid));
                }
            }
            if d == 0 {
                let x = [
                    r.try_get_f64().map_err(&e)?,
                    r.try_get_f64().map_err(&e)?,
                    r.try_get_f64().map_err(&e)?,
                ];
                match part.find_gid(dim, gid) {
                    Some(v) => {
                        part.mesh.set_coords(v, x);
                        part.mesh.set_class(v, GeomEnt(class));
                        if ghost && skip_ghosts {
                            demote.push(v);
                        }
                    }
                    None => {
                        if ghost && skip_ghosts {
                            continue;
                        }
                        part.add_vertex(x, GeomEnt(class), gid);
                    }
                }
            } else {
                let vgids = r.try_get_u64_slice().map_err(&e)?;
                match part.find_gid(dim, gid) {
                    Some(ent) => {
                        part.mesh.set_class(ent, GeomEnt(class));
                        if ghost && skip_ghosts {
                            demote.push(ent);
                        }
                    }
                    None => {
                        if ghost && skip_ghosts {
                            continue;
                        }
                        let mut verts = Vec::with_capacity(vgids.len());
                        for g in vgids {
                            match part.find_gid(Dim::Vertex, g) {
                                Some(v) => verts.push(v.index()),
                                None => {
                                    return Err(IoError::Decode {
                                        part: fpart,
                                        section: sec,
                                        detail: format!(
                                            "delta entity gid {gid} references unknown vertex {g}"
                                        ),
                                    })
                                }
                            }
                        }
                        part.add_entity(topo, &verts, GeomEnt(class), gid);
                    }
                }
            }
        }
    }
    demote.sort_by_key(|ent| std::cmp::Reverse(ent.dim().as_usize()));
    for ent in demote {
        if part.mesh.is_live(ent) {
            part.delete_entity(ent);
        }
    }
    Ok(())
}
