//! Vendored minimal stand-in for `crossbeam::channel` (offline build; see
//! `vendor/README.md`). Backed by `std::sync::mpsc`, which provides the same
//! unbounded MPSC semantics the simulated PCU world needs: cloneable senders,
//! blocking `recv`, and non-blocking `try_recv`.

pub mod channel {
    use std::sync::mpsc;

    /// Sending half of an unbounded channel.
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            Sender(self.0.clone())
        }
    }

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    /// The channel is disconnected (all receivers dropped).
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// The channel is disconnected (all senders dropped).
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Why a `try_recv` returned nothing.
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message is currently queued.
        Empty,
        /// All senders dropped and the queue is drained.
        Disconnected,
    }

    /// An unbounded MPSC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    impl<T> Sender<T> {
        /// Enqueue `t`; fails only if the receiver is gone.
        pub fn send(&self, t: T) -> Result<(), SendError<T>> {
            self.0.send(t).map_err(|mpsc::SendError(t)| SendError(t))
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives or all senders drop.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Dequeue a message if one is already queued.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;

    #[test]
    fn send_recv_across_threads() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        std::thread::spawn(move || tx2.send(41u32).unwrap());
        std::thread::spawn(move || tx.send(1u32).unwrap());
        let sum = rx.recv().unwrap() + rx.recv().unwrap();
        assert_eq!(sum, 42);
    }

    #[test]
    fn try_recv_empty_then_disconnected() {
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn recv_fails_after_all_senders_drop() {
        let (tx, rx) = unbounded::<u8>();
        tx.send(5).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(5));
        assert!(rx.recv().is_err());
    }
}
