//! Vendored minimal stand-in for `parking_lot` (offline build; see
//! `vendor/README.md`). Wraps `std::sync::Mutex` with parking_lot's
//! poison-free API: `lock()` returns the guard directly, recovering the
//! inner value if a holder panicked.

/// A mutex whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard; the lock is released on drop.
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// A new mutex holding `t`.
    pub const fn new(t: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(t))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, ignoring poisoning (parking_lot semantics).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Mutable access without locking (exclusive borrow proves uniqueness).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1u32);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn survives_panicked_holder() {
        let m = Arc::new(Mutex::new(0u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
