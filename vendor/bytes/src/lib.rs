//! Vendored minimal stand-in for the [`bytes`](https://docs.rs/bytes) crate.
//!
//! This workspace builds fully offline (see `vendor/README.md`), so the small
//! slice of the `bytes` API that PUMI's message layer uses is reimplemented
//! here on top of `Arc<Vec<u8>>`. Semantics match the real crate for the
//! methods provided: `Bytes` is a cheaply-clonable immutable buffer with a
//! read cursor, `BytesMut` an append-only growable buffer that freezes into
//! `Bytes`. Two extensions beyond the original subset serve the PCU hot
//! path: [`Bytes::split_to`] hands out zero-copy sub-slices (relay frames,
//! length-prefixed payloads) and [`Bytes::try_unfreeze`] reclaims a uniquely
//! owned allocation so buffer pools can retain capacity across phases.

use std::ops::Deref;
use std::sync::Arc;

/// Cheaply clonable immutable byte buffer with a consume cursor.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    /// Consumed prefix: reads see `data[off..end]`.
    off: usize,
    /// Exclusive end of this view (sub-slices share `data`).
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// A buffer viewing a static slice (copied; the real crate borrows).
    pub fn from_static(s: &'static [u8]) -> Bytes {
        Bytes::from(s.to_vec())
    }

    /// Unconsumed length.
    pub fn len(&self) -> usize {
        self.end - self.off
    }

    /// Whether no unconsumed bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copy the unconsumed bytes into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data[self.off..self.end].to_vec()
    }

    /// Split off the next `n` unconsumed bytes as a new `Bytes` sharing the
    /// same allocation (zero copy); `self` advances past them.
    ///
    /// # Panics
    /// Panics if `n` exceeds the unconsumed length.
    pub fn split_to(&mut self, n: usize) -> Bytes {
        assert!(
            n <= self.len(),
            "split_to past end: need {n}, have {}",
            self.len()
        );
        let head = Bytes {
            data: Arc::clone(&self.data),
            off: self.off,
            end: self.off + n,
        };
        self.off += n;
        head
    }

    /// Recover the backing allocation as a [`BytesMut`] (cleared, capacity
    /// retained) if this is the only handle to it; otherwise hand `self`
    /// back. Used by buffer pools to recycle message storage.
    pub fn try_unfreeze(self) -> Result<BytesMut, Bytes> {
        let Bytes { data, off, end } = self;
        match Arc::try_unwrap(data) {
            Ok(mut v) => {
                v.clear();
                Ok(BytesMut { buf: v })
            }
            Err(data) => Err(Bytes { data, off, end }),
        }
    }

    fn take(&mut self, n: usize) -> &[u8] {
        assert!(
            self.len() >= n,
            "Bytes advanced past end: need {n}, have {}",
            self.len()
        );
        let s = &self.data[self.off..self.off + n];
        self.off += n;
        s
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes {
            data: Arc::new(v),
            off: 0,
            end,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.off..self.end]
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({:?})", &self[..])
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self[..] == other[..]
    }
}
impl Eq for Bytes {}

/// Read-side cursor operations (little-endian, as used by `pumi-pcu::msg`).
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;
    /// Consume one byte.
    fn get_u8(&mut self) -> u8;
    /// Consume a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32;
    /// Consume a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64;
    /// Consume a little-endian `i64`.
    fn get_i64_le(&mut self) -> i64;
    /// Consume a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64;
    /// Consume exactly `dst.len()` bytes into `dst`.
    fn copy_to_slice(&mut self, dst: &mut [u8]);
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn get_u8(&mut self) -> u8 {
        self.take(1)[0]
    }

    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take(4).try_into().unwrap())
    }

    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take(8).try_into().unwrap())
    }

    fn get_i64_le(&mut self) -> i64 {
        i64::from_le_bytes(self.take(8).try_into().unwrap())
    }

    fn get_f64_le(&mut self) -> f64 {
        f64::from_le_bytes(self.take(8).try_into().unwrap())
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        let src = self.take(dst.len());
        dst.copy_from_slice(src);
    }
}

/// Growable append-only byte buffer.
#[derive(Debug, Clone, Default)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Bytes written.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Allocated capacity.
    pub fn capacity(&self) -> usize {
        self.buf.capacity()
    }

    /// Reserve room for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.buf.reserve(additional);
    }

    /// Drop the contents, retaining capacity.
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// View the written bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Copy out as a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.buf.clone()
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

/// Write-side append operations (little-endian).
pub trait BufMut {
    /// Append one byte.
    fn put_u8(&mut self, x: u8);
    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, x: u32);
    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, x: u64);
    /// Append a little-endian `i64`.
    fn put_i64_le(&mut self, x: i64);
    /// Append a little-endian `f64`.
    fn put_f64_le(&mut self, x: f64);
    /// Append a slice verbatim.
    fn put_slice(&mut self, s: &[u8]);
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, x: u8) {
        self.buf.push(x);
    }

    fn put_u32_le(&mut self, x: u32) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }

    fn put_u64_le(&mut self, x: u64) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }

    fn put_i64_le(&mut self, x: i64) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }

    fn put_f64_le(&mut self, x: f64) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }

    fn put_slice(&mut self, s: &[u8]) {
        self.buf.extend_from_slice(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_freeze_read_roundtrip() {
        let mut w = BytesMut::with_capacity(64);
        w.put_u8(9);
        w.put_u32_le(1234);
        w.put_u64_le(u64::MAX);
        w.put_i64_le(-5);
        w.put_f64_le(2.5);
        w.put_slice(b"abc");
        let mut b = w.freeze();
        assert_eq!(b.get_u8(), 9);
        assert_eq!(b.get_u32_le(), 1234);
        assert_eq!(b.get_u64_le(), u64::MAX);
        assert_eq!(b.get_i64_le(), -5);
        assert_eq!(b.get_f64_le(), 2.5);
        let mut s = [0u8; 3];
        b.copy_to_slice(&mut s);
        assert_eq!(&s, b"abc");
        assert_eq!(b.remaining(), 0);
    }

    #[test]
    fn clones_share_storage_but_not_cursor() {
        let mut a = Bytes::from(vec![1, 2, 3, 4]);
        let b = a.clone();
        a.get_u8();
        assert_eq!(a.len(), 3);
        assert_eq!(b.len(), 4);
        assert_eq!(&b[..], &[1, 2, 3, 4]);
    }

    #[test]
    fn deref_sees_unconsumed_suffix() {
        let mut b = Bytes::from_static(b"hello");
        b.get_u8();
        assert_eq!(&b[..], b"ello");
        assert_eq!(b[0], b'e');
    }

    #[test]
    fn split_to_shares_storage() {
        let mut b = Bytes::from(vec![1, 2, 3, 4, 5]);
        b.get_u8();
        let mut head = b.split_to(2);
        assert_eq!(&head[..], &[2, 3]);
        assert_eq!(&b[..], &[4, 5]);
        assert_eq!(head.get_u8(), 2);
        assert_eq!(head.len(), 1);
        // The parent's cursor is independent of the slice's.
        assert_eq!(b.len(), 2);
        let empty = b.split_to(0);
        assert!(empty.is_empty());
    }

    #[test]
    #[should_panic(expected = "split_to past end")]
    fn split_to_checks_bounds() {
        let mut b = Bytes::from(vec![1]);
        b.split_to(2);
    }

    #[test]
    fn try_unfreeze_reclaims_unique_allocation() {
        let mut w = BytesMut::with_capacity(128);
        w.put_slice(b"payload");
        let b = w.freeze();
        let back = b.try_unfreeze().expect("unique");
        assert!(back.is_empty());
        assert!(back.capacity() >= 128);
    }

    #[test]
    fn try_unfreeze_fails_when_shared() {
        let b = Bytes::from(vec![1, 2, 3]);
        let clone = b.clone();
        let back = b.try_unfreeze().unwrap_err();
        assert_eq!(&back[..], &[1, 2, 3]);
        drop(clone);
        assert!(back.try_unfreeze().is_ok());
    }
}
