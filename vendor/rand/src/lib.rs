//! Vendored minimal stand-in for the `rand` crate (offline build; see
//! `vendor/README.md`). Provides a deterministic splitmix64-based generator
//! behind the `Rng`/`SeedableRng` trait surface the workspace uses:
//! `gen_range` over integer and float ranges, and `gen_bool`.
//!
//! The stream differs from the real `rand` crate's — callers in this
//! workspace use randomness to diversify test inputs and jitter meshes, and
//! assert invariants rather than exact sequences, so only determinism and
//! rough uniformity matter.

/// Uniform sampling from a range type, used by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value from `rng` uniformly over the range.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                self.start + rng.unit_f64() as $t * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                lo + rng.unit_f64() as $t * (hi - lo)
            }
        }
    )*};
}
impl_float_range!(f32, f64);

/// Random value generation.
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform `f64` in `[0, 1)`.
    fn unit_f64(&mut self) -> f64 {
        // 53 mantissa bits of the raw stream.
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform draw from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        self.unit_f64() < p
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Deterministic generator from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Named generator types, mirroring `rand::rngs`.
pub mod rngs {
    use super::{splitmix64, Rng, SeedableRng};

    /// The workspace's standard deterministic generator (splitmix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            splitmix64(&mut self.state)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // One warm-up step decorrelates small seeds.
            let mut state = seed;
            splitmix64(&mut state);
            StdRng { state }
        }
    }

    /// Alias of [`StdRng`]; the real crate's small fast generator.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs[0], c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: u32 = r.gen_range(3u32..17);
            assert!((3..17).contains(&x));
            let y = r.gen_range(-2.0f64..=2.0);
            assert!((-2.0..=2.0).contains(&y));
            let z: i64 = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&z));
        }
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut r = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&hits), "hits {hits}");
        assert!((0..100).all(|_| !r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }
}
