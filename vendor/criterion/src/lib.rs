//! Vendored minimal stand-in for the `criterion` crate (offline build; see
//! `vendor/README.md`). Implements the group/bench API surface this
//! workspace's micro-benchmarks use. Instead of criterion's statistical
//! sampling, each benchmark is timed over `sample_size` batches and the
//! median per-iteration wall time is printed — enough to compare hot paths
//! release-to-release without any external dependency.
//!
//! When the `CRITERION_JSON` environment variable names a file, every
//! completed benchmark additionally appends one machine-readable JSON line
//! to it: `{"bench": "<group>/<id>", "median_ns": N, "samples": S}`.
//! Snapshot scripts use this to collect medians without scraping stdout.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// A benchmark identifier: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Identifier from a function name and a displayed parameter.
    pub fn new<P: std::fmt::Display>(function_id: &str, parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: format!("{function_id}/{parameter}"),
        }
    }
}

/// Work-per-iteration annotation, reported as a rate.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iterations process this many elements.
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// Timer driver passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `f`, called `self.iters` times.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    samples: usize,
    throughput: Option<Throughput>,
    _c: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark (minimum 2).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(2);
        self
    }

    /// Annotate subsequent benchmarks with work-per-iteration.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut per_iter: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let mut b = Bencher {
                iters: 1,
                elapsed: Duration::ZERO,
            };
            f(&mut b, input);
            per_iter.push(b.elapsed / b.iters as u32);
        }
        per_iter.sort();
        let median = per_iter[per_iter.len() / 2];
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) => {
                format!("  ({:.3} Melem/s)", n as f64 / median.as_secs_f64() / 1e6)
            }
            Some(Throughput::Bytes(n)) => {
                format!(
                    "  ({:.3} MiB/s)",
                    n as f64 / median.as_secs_f64() / (1 << 20) as f64
                )
            }
            None => String::new(),
        };
        println!(
            "bench {}/{}: median {:?} over {} samples{}",
            self.name, id.id, median, self.samples, rate
        );
        if let Ok(path) = std::env::var("CRITERION_JSON") {
            if !path.is_empty() {
                let line = format!(
                    "{{\"bench\": \"{}/{}\", \"median_ns\": {}, \"samples\": {}}}\n",
                    self.name,
                    id.id,
                    median.as_nanos(),
                    self.samples
                );
                let _ = std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(&path)
                    .and_then(|mut f| std::io::Write::write_all(&mut f, line.as_bytes()));
            }
        }
        self
    }

    /// Run one benchmark without an input parameter.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &()),
    {
        self.bench_with_input(BenchmarkId::new(name, ""), &(), f)
    }

    /// End the group (formatting no-op; kept for API parity).
    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Begin a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            samples: 10,
            throughput: None,
            _c: self,
        }
    }
}

/// Collect benchmark functions under one group name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo(c: &mut Criterion) {
        let mut g = c.benchmark_group("demo");
        g.sample_size(3);
        g.throughput(Throughput::Elements(100));
        g.bench_with_input(BenchmarkId::new("sum", 100), &100u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.finish();
    }

    criterion_group!(bench_demo, demo);

    #[test]
    fn group_runs_to_completion() {
        bench_demo();
    }

    #[test]
    fn json_lines_append_when_env_names_a_file() {
        let path = std::env::temp_dir().join("criterion-jsonl-test.jsonl");
        let _ = std::fs::remove_file(&path);
        // Note: affects the whole test process, but only this crate's tests
        // run benches, and a concurrent extra line is harmless below.
        std::env::set_var("CRITERION_JSON", &path);
        bench_demo();
        std::env::remove_var("CRITERION_JSON");
        let body = std::fs::read_to_string(&path).unwrap();
        let line = body
            .lines()
            .find(|l| l.contains("\"bench\": \"demo/sum/100\""))
            .expect("bench line present");
        assert!(line.contains("\"median_ns\": "));
        assert!(line.contains("\"samples\": 3"));
        let _ = std::fs::remove_file(&path);
    }
}
