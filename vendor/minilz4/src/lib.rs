//! Minimal pure-Rust LZ4 *block* compressor/decompressor.
//!
//! Implements the standard LZ4 block format (token byte with 4-bit
//! literal/match length nibbles, LSIC length extension bytes, 2-byte
//! little-endian match offsets, minimum match of 4) with a greedy
//! hash-table matcher. Compressed blocks carry no self-describing length:
//! the caller must record the decompressed size out of band and pass it to
//! [`decompress`], which is exactly how `.pmb` v2 chunk headers use it.
//!
//! The implementation favours clarity and bounds-checked safety over
//! ratio/speed heroics: no unsafe, no external dependencies. It honours the
//! spec's end-of-block restrictions (the last 5 bytes are always literals;
//! a match never covers them), so blocks interoperate with reference LZ4
//! block decoders.

/// Errors from [`decompress`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Lz4Error {
    /// The compressed stream ended mid-sequence.
    Truncated,
    /// A match offset points before the start of the output.
    BadOffset,
    /// The stream decodes to more than the promised output length.
    OutputOverflow,
    /// The stream decoded cleanly but to fewer bytes than promised.
    OutputUnderflow {
        /// Bytes the caller promised.
        expected: usize,
        /// Bytes actually produced.
        got: usize,
    },
}

impl std::fmt::Display for Lz4Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Lz4Error::Truncated => write!(f, "compressed stream truncated mid-sequence"),
            Lz4Error::BadOffset => write!(f, "match offset points before output start"),
            Lz4Error::OutputOverflow => write!(f, "stream exceeds promised output length"),
            Lz4Error::OutputUnderflow { expected, got } => {
                write!(f, "stream produced {got} bytes, {expected} promised")
            }
        }
    }
}

impl std::error::Error for Lz4Error {}

const MIN_MATCH: usize = 4;
/// Spec: the last five bytes of a block are always literals.
const LAST_LITERALS: usize = 5;
/// Spec: a match must not start within the last 12 bytes.
const MFLIMIT: usize = 12;
const MAX_OFFSET: usize = 65535;
const HASH_BITS: u32 = 14;

#[inline]
fn hash4(v: u32) -> usize {
    (v.wrapping_mul(2654435761) >> (32 - HASH_BITS)) as usize
}

#[inline]
fn read_u32(src: &[u8], i: usize) -> u32 {
    u32::from_le_bytes([src[i], src[i + 1], src[i + 2], src[i + 3]])
}

fn put_length(out: &mut Vec<u8>, mut n: usize) {
    while n >= 255 {
        out.push(255);
        n -= 255;
    }
    out.push(n as u8);
}

fn emit_sequence(out: &mut Vec<u8>, literals: &[u8], offset: usize, match_len: usize) {
    let lit_nibble = literals.len().min(15);
    let match_nibble = if match_len > 0 {
        (match_len - MIN_MATCH).min(15)
    } else {
        0
    };
    out.push(((lit_nibble as u8) << 4) | match_nibble as u8);
    if literals.len() >= 15 {
        put_length(out, literals.len() - 15);
    }
    out.extend_from_slice(literals);
    if match_len > 0 {
        out.extend_from_slice(&(offset as u16).to_le_bytes());
        if match_len - MIN_MATCH >= 15 {
            put_length(out, match_len - MIN_MATCH - 15);
        }
    }
}

/// Compress `src` into a fresh LZ4 block. Always succeeds; incompressible
/// input grows by at most `src.len()/255 + 16` bytes (callers that care
/// should fall back to storing raw when the result is not smaller).
pub fn compress(src: &[u8]) -> Vec<u8> {
    let n = src.len();
    let mut out = Vec::with_capacity(n / 2 + 16);
    if n < MFLIMIT + 1 {
        emit_sequence(&mut out, src, 0, 0);
        return out;
    }
    let mut table = vec![usize::MAX; 1 << HASH_BITS];
    let match_limit = n - LAST_LITERALS;
    let scan_limit = n - MFLIMIT;
    let mut anchor = 0usize;
    let mut i = 0usize;
    while i <= scan_limit {
        let h = hash4(read_u32(src, i));
        let cand = table[h];
        table[h] = i;
        if cand == usize::MAX || i - cand > MAX_OFFSET || read_u32(src, cand) != read_u32(src, i) {
            i += 1;
            continue;
        }
        // Extend the match forward (never into the tail literals).
        let mut len = MIN_MATCH;
        while i + len < match_limit && src[cand + len] == src[i + len] {
            len += 1;
        }
        emit_sequence(&mut out, &src[anchor..i], i - cand, len);
        i += len;
        anchor = i;
    }
    emit_sequence(&mut out, &src[anchor..], 0, 0);
    out
}

fn get_length(src: &[u8], pos: &mut usize, start: usize) -> Result<usize, Lz4Error> {
    let mut n = start;
    if start == 15 {
        loop {
            let b = *src.get(*pos).ok_or(Lz4Error::Truncated)?;
            *pos += 1;
            n += b as usize;
            if b != 255 {
                break;
            }
        }
    }
    Ok(n)
}

/// Decompress an LZ4 block that is promised to expand to exactly
/// `expected_len` bytes. Any malformed input — truncation, an offset
/// reaching before the output, or a length disagreement — yields a typed
/// [`Lz4Error`]; out-of-bounds access is impossible.
pub fn decompress(src: &[u8], expected_len: usize) -> Result<Vec<u8>, Lz4Error> {
    let mut out: Vec<u8> = Vec::with_capacity(expected_len);
    let mut pos = 0usize;
    loop {
        let token = match src.get(pos) {
            Some(&t) => t,
            None if pos == src.len() && !out.is_empty() => break,
            None => return Err(Lz4Error::Truncated),
        };
        pos += 1;
        let lit_len = get_length(src, &mut pos, (token >> 4) as usize)?;
        let lit_end = pos.checked_add(lit_len).ok_or(Lz4Error::Truncated)?;
        if lit_end > src.len() {
            return Err(Lz4Error::Truncated);
        }
        if out.len() + lit_len > expected_len {
            return Err(Lz4Error::OutputOverflow);
        }
        out.extend_from_slice(&src[pos..lit_end]);
        pos = lit_end;
        if pos == src.len() {
            break; // final sequence carries literals only
        }
        if pos + 2 > src.len() {
            return Err(Lz4Error::Truncated);
        }
        let offset = u16::from_le_bytes([src[pos], src[pos + 1]]) as usize;
        pos += 2;
        if offset == 0 || offset > out.len() {
            return Err(Lz4Error::BadOffset);
        }
        let match_len = MIN_MATCH + get_length(src, &mut pos, (token & 0x0F) as usize)?;
        if out.len() + match_len > expected_len {
            return Err(Lz4Error::OutputOverflow);
        }
        let from = out.len() - offset;
        // Overlapping copies are the point (run-length encoding); copy
        // byte-wise from the already-produced output.
        for k in 0..match_len {
            let b = out[from + k];
            out.push(b);
        }
    }
    if out.len() != expected_len {
        return Err(Lz4Error::OutputUnderflow {
            expected: expected_len,
            got: out.len(),
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) {
        let c = compress(data);
        let d = decompress(&c, data.len()).expect("decompress");
        assert_eq!(d, data, "roundtrip mismatch for {} bytes", data.len());
    }

    #[test]
    fn roundtrips() {
        roundtrip(b"");
        roundtrip(b"a");
        roundtrip(b"hello world");
        roundtrip(&[0u8; 100_000]);
        roundtrip(&(0..255u8).cycle().take(70_000).collect::<Vec<_>>());
        // Compressible structured data: repeated 21-byte records.
        let rec: Vec<u8> = (0..21u8).collect();
        let data: Vec<u8> = rec.iter().cycle().take(50_000).copied().collect();
        roundtrip(&data);
        // Pseudo-random (incompressible) payload.
        let mut x = 0x9E3779B97F4A7C15u64;
        let rand: Vec<u8> = (0..40_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x as u8
            })
            .collect();
        roundtrip(&rand);
    }

    #[test]
    fn compresses_redundancy() {
        let data = vec![7u8; 1 << 20];
        let c = compress(&data);
        assert!(c.len() < data.len() / 100, "ratio too poor: {}", c.len());
    }

    #[test]
    fn truncated_stream_is_typed() {
        let c = compress(&[5u8; 4096]);
        for cut in [1, c.len() / 2, c.len() - 1] {
            let e = decompress(&c[..cut], 4096).expect_err("must fail");
            assert!(
                matches!(
                    e,
                    Lz4Error::Truncated
                        | Lz4Error::OutputUnderflow { .. }
                        | Lz4Error::BadOffset
                        | Lz4Error::OutputOverflow
                ),
                "unexpected {e:?}"
            );
        }
    }

    #[test]
    fn wrong_expected_len_is_typed() {
        let data = b"the quick brown fox jumps over the lazy dog".repeat(50);
        let c = compress(&data);
        assert!(matches!(
            decompress(&c, data.len() - 1),
            Err(Lz4Error::OutputOverflow)
        ));
        assert!(matches!(
            decompress(&c, data.len() + 1),
            Err(Lz4Error::OutputUnderflow { .. })
        ));
    }

    #[test]
    fn bad_offset_is_typed() {
        // Token: 1 literal then a match; offset 9 with only 1 byte produced.
        let stream = [0x10u8, b'x', 9, 0, 0];
        assert!(matches!(decompress(&stream, 20), Err(Lz4Error::BadOffset)));
    }
}
