//! Vendored minimal stand-in for the `proptest` crate (offline build; see
//! `vendor/README.md`).
//!
//! Supports the subset this workspace's property tests use: the
//! [`proptest!`] macro (with an optional `#![proptest_config(..)]` inner
//! attribute), range strategies over integers and floats, tuple strategies,
//! [`collection::vec`], [`bool::ANY`], [`array::uniform3`], and the
//! `prop_assert*` macros.
//!
//! Unlike the real crate there is no shrinking: each test runs
//! `ProptestConfig::cases` deterministic random cases (seeded from the test
//! name, so failures reproduce across runs) and panics on the first failing
//! case, printing the case index. The workspace's properties are invariants
//! over generated inputs, so this preserves their meaning while keeping the
//! build dependency-free.

/// Generation strategies ([`Strategy`](strategy::Strategy) and the
/// range/tuple impls).
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A source of random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
        )*};
    }
    impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_float_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + rng.unit_f64() as $t * (self.end - self.start)
                }
            }
        )*};
    }
    impl_float_strategy!(f32, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
    }
}

/// Collection strategies (`vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Vec<S::Value>` with a length drawn from a range.
    pub struct VecStrategy<S> {
        elem: S,
        len: std::ops::Range<usize>,
    }

    /// Vectors of `elem`-generated values with length in `len`.
    pub fn vec<S: Strategy>(elem: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty vec length range");
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + (rng.next_u64() % span) as usize;
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Fixed-size array strategies.
pub mod array {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `[S::Value; 3]`.
    pub struct Uniform3<S>(S);

    /// Three independent draws of `elem`.
    pub fn uniform3<S: Strategy>(elem: S) -> Uniform3<S> {
        Uniform3(elem)
    }

    impl<S: Strategy> Strategy for Uniform3<S> {
        type Value = [S::Value; 3];
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            [
                self.0.generate(rng),
                self.0.generate(rng),
                self.0.generate(rng),
            ]
        }
    }
}

/// Boolean strategies.
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy yielding `true`/`false` with equal probability.
    pub struct Any;

    /// The fair-coin boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Test configuration and the deterministic case RNG.
pub mod test_runner {
    /// How many random cases each property runs.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of generated cases.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            // Smaller than the real crate's 256: no shrinking means failures
            // print a whole case, and CI wants bounded runtimes.
            ProptestConfig { cases: 32 }
        }
    }

    /// splitmix64 generator seeded from the property's name, so every run
    /// (and every CI machine) explores the same cases.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Deterministic RNG for the named property.
        pub fn deterministic(name: &str) -> TestRng {
            // FNV-1a over the name gives a stable per-property stream.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next raw 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Define property tests: `proptest! { #[test] fn p(x in 0u32..10) { .. } }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng =
                $crate::test_runner::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__cfg.cases {
                let __run = |__rng: &mut $crate::test_runner::TestRng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                    $body
                };
                let __outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                    || __run(&mut __rng),
                ));
                if let ::std::result::Result::Err(__e) = __outcome {
                    eprintln!(
                        "proptest: property {} failed at case {}/{}",
                        stringify!($name), __case + 1, __cfg.cases
                    );
                    ::std::panic::resume_unwind(__e);
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Assert a condition inside a property (panics, failing the case).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn ranges_and_tuples(
            x in 1u32..10,
            (a, b) in (0u64..5, -3i64..=3),
            f in 0.25f64..0.75,
        ) {
            prop_assert!((1..10).contains(&x));
            prop_assert!(a < 5);
            prop_assert!((-3..=3).contains(&b));
            prop_assert!((0.25..0.75).contains(&f), "f = {f}");
        }

        #[test]
        fn collections_and_arrays(
            v in crate::collection::vec((0u32..4, crate::bool::ANY), 2..9),
            xyz in crate::array::uniform3(-1.0f64..1.0),
        ) {
            prop_assert!((2..9).contains(&v.len()));
            for (n, _flag) in v {
                prop_assert!(n < 4);
            }
            prop_assert!(xyz.iter().all(|c| (-1.0..1.0).contains(c)));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = crate::test_runner::TestRng::deterministic("p");
        let mut b = crate::test_runner::TestRng::deterministic("p");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
