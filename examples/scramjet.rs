//! Scramjet-style adaptive workflow (the paper's Fig 7, qualitatively).
//!
//! Supersonic flow past a scramjet produces oblique shocks reflecting
//! through the duct; analysis-driven adaptation refines tightly along them.
//! This example runs the full workflow on a 2D duct: initial mesh →
//! shock-aligned size field → refine + coarsen → partition → distribute →
//! ParMA multi-criteria balance — reporting mesh size, quality, and balance
//! at each step, the numbers behind the pictures in Fig 7.
//!
//! Run: `cargo run --release --example scramjet`

use parma::{improve, EntityLoads, ImproveOpts, Priority};
use pumi_adapt::{coarsen, quality_stats, refine, CoarsenOpts, RefineOpts, SizeField};
use pumi_core::verify::assert_dist_valid;
use pumi_core::{distribute, PartMap};
use pumi_meshgen::{jitter, tri_rect};
use pumi_partition::partition_mesh;
use pumi_pcu::execute;
use pumi_util::Dim;

/// Distance to a pair of oblique shock fronts reflecting through the duct.
fn shock_distance(p: [f64; 3]) -> f64 {
    // Incident shock from the inlet lip and its reflection off the top wall.
    let s1 = (p[1] - 0.55 * p[0]).abs();
    let s2 = (p[1] - (1.0 - 0.55 * (p[0] - 1.8))).abs();
    s1.min(s2)
}

fn main() {
    // The duct: 4 x 1 rectangle.
    let mut mesh = tri_rect(48, 12, 4.0, 1.0);
    jitter(&mut mesh, 0.2, 7);
    let (min_q, mean_q) = quality_stats(&mesh);
    println!(
        "initial mesh: {} triangles, quality min {:.2} mean {:.2}",
        mesh.num_elems(),
        min_q,
        mean_q
    );

    // Shock-aligned size field: 8x finer at the fronts.
    let size = SizeField::shock(shock_distance, 0.01, 0.09, 0.015);
    let rs = refine(&mut mesh, &size, None, RefineOpts::default());
    let cs = coarsen(&mut mesh, &size, CoarsenOpts::default());
    mesh.assert_valid();
    let (min_q, mean_q) = quality_stats(&mesh);
    println!(
        "adapted mesh: {} triangles ({} splits, {} collapses), quality min {:.2} mean {:.2}",
        mesh.num_elems(),
        rs.splits,
        cs.collapses,
        min_q,
        mean_q
    );

    // Partition the adapted mesh and balance vertices for the FE solve.
    let nparts = 16;
    let labels = partition_mesh(&mesh, nparts);
    let out = execute(4, |c| {
        let mut dm = distribute(c, PartMap::contiguous(nparts, 4), &mesh, &labels);
        let before = EntityLoads::gather(c, &dm);
        let pri: Priority = "Vtx > Face".parse().unwrap();
        let report = improve(c, &mut dm, &pri, ImproveOpts::default());
        assert_dist_valid(c, &dm);
        let after = EntityLoads::gather(c, &dm);
        (c.rank() == 0).then(|| {
            (
                before.imbalance_pct(Dim::Vertex),
                after.imbalance_pct(Dim::Vertex),
                after.imbalance_pct(Dim::Face),
                report.seconds,
            )
        })
    });
    let (vb, va, ea, secs) = out.into_iter().flatten().next().unwrap();
    println!(
        "ParMA Vtx > Face on {nparts} parts: vertex imbalance {vb:.1}% -> {va:.1}% \
         (element {ea:.1}%) in {secs:.2}s"
    );
    println!("scramjet workflow complete");
}
