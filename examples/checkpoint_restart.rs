//! Checkpoint/restart: write a ParMA-improved partition to disk, then
//! restore it on different rank counts.
//!
//! Generates a tet mesh, partitions it to 6 parts on 3 simulated ranks,
//! improves the balance with ParMA, checkpoints to a `.pmb` directory, and
//! restores the checkpoint twice — merging onto 2 ranks and splitting onto
//! 8 — verifying the mesh and comparing structural hashes each time.
//!
//! Run: `cargo run --release --example checkpoint_restart`

use parma::{improve, ImproveOpts, Priority};
use pumi_core::verify::assert_dist_valid;
use pumi_core::{distribute, PartMap};
use pumi_field::{DistField, Field, FieldShape};
use pumi_io::{read_checkpoint, struct_hash, write_checkpoint};
use pumi_meshgen::tet_box;
use pumi_partition::partition_mesh;
use pumi_pcu::execute;
use pumi_util::Dim;

fn main() {
    let serial = tet_box(6, 6, 6, 1.0, 1.0, 1.0);
    let nparts = 6;
    let labels = partition_mesh(&serial, nparts);
    let dir = std::env::temp_dir().join(format!("pumi_ckpt_example_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Write world: 3 ranks host 6 parts, ParMA improves the partition, and
    // every part serializes itself — the file partition IS the mesh
    // partition.
    let pri: Priority = "Rgn > Vtx".parse().expect("priority");
    let out = execute(3, |c| {
        let mut dm = distribute(c, PartMap::contiguous(nparts, 3), &serial, &labels);
        improve(c, &mut dm, &pri, ImproveOpts::new().tol(0.05));
        assert_dist_valid(c, &dm);
        let mut fields: DistField = Vec::new();
        for part in &dm.parts {
            let mut f = Field::new("temp", FieldShape::Linear, 1);
            for v in part.mesh.iter(Dim::Vertex) {
                f.set_scalar(v, part.mesh.coords(v)[0]);
            }
            fields.push(f);
        }
        let stats = write_checkpoint(c, &dm, &[&fields], &dir).expect("write");
        (struct_hash(c, &dm), stats.bytes_global)
    });
    let (want, bytes) = out[0];
    println!("checkpointed {nparts} parts, {bytes} bytes, hash {want:#018x}");

    // Restore A: 6 parts onto 2 ranks — blocks of 3 parts merge per rank.
    let hashes = execute(2, |c| {
        let restored = read_checkpoint(c, &dir).expect("restore on 2");
        assert_dist_valid(c, &restored.dm);
        assert_eq!(restored.fields.len(), 1);
        struct_hash(c, &restored.dm)
    });
    assert!(hashes.iter().all(|&h| h == want));
    println!("restored 6 -> 2 ranks (merge): hash matches, verify clean");

    // Restore B: 6 parts onto 8 ranks — parts split via the local graph
    // partitioner and migrate out.
    let hashes = execute(8, |c| {
        let restored = read_checkpoint(c, &dir).expect("restore on 8");
        assert_dist_valid(c, &restored.dm);
        let moved = restored.stats.elements_moved;
        let h = struct_hash(c, &restored.dm);
        (c.rank() == 0).then(|| println!("  split moved {moved} elements"));
        h
    });
    assert!(hashes.iter().all(|&h| h == want));
    println!("restored 6 -> 8 ranks (split): hash matches, verify clean");

    let _ = std::fs::remove_dir_all(&dir);
    println!("checkpoint_restart complete");
}
