//! Accelerator-style moving-feature adaptation (the paper's Fig 8,
//! qualitatively).
//!
//! Fig 8 shows "three adapted meshes tracking the motion of particles
//! through a linear accelerator": the refined window follows the particle
//! bunch. This example tracks a Gaussian bunch moving along a 3D channel
//! through three adaptation steps — refining around it, coarsening behind —
//! and transfers the bunch-density field from each mesh to the next,
//! reporting the interpolation drift.
//!
//! Run: `cargo run --release --example accelerator`

use pumi_adapt::{coarsen, quality_stats, refine, CoarsenOpts, RefineOpts, SizeField};
use pumi_field::{transfer_linear, Field, FieldShape};
use pumi_meshgen::tet_box;
use pumi_util::Dim;

fn density(center: f64, p: [f64; 3]) -> f64 {
    let dx = p[2] - center;
    let r2 = (p[0] - 0.5).powi(2) + (p[1] - 0.5).powi(2);
    (-(dx * dx) / 0.02 - r2 / 0.1).exp()
}

fn main() {
    // The accelerator channel: 1 x 1 x 4 box.
    let mut mesh = tet_box(6, 6, 24, 1.0, 1.0, 4.0);
    let mut prev_center = 0.5f64;
    let mut field = Field::new("bunch", FieldShape::Linear, 1);
    field.set_from(&mesh, |p| vec![density(prev_center, p)]);
    println!(
        "step 0: {} tets (initial), bunch at z={prev_center}, field nodes {}",
        mesh.num_elems(),
        field.len()
    );

    for (step, center) in [(1usize, 1.0f64), (2, 2.0), (3, 3.0)] {
        // Size field: fine inside the moving window, coarse elsewhere.
        let size = SizeField::analytic(move |p| {
            let d = (p[2] - center).abs();
            if d < 0.35 {
                0.06
            } else {
                0.05 + 0.4 * (d - 0.3).min(1.0)
            }
        });
        // Re-mesh for the new window (refine it, coarsen the wake); the old
        // mesh stays alive as the transfer source.
        let old_mesh = std::mem::replace(&mut mesh, tet_box(6, 6, 24, 1.0, 1.0, 4.0));
        let mut adapted = std::mem::replace(&mut mesh, tet_box(1, 1, 1, 1.0, 1.0, 1.0));
        let rs = refine(&mut adapted, &size, None, RefineOpts::default());
        let cs = coarsen(&mut adapted, &size, CoarsenOpts::default());
        adapted.assert_valid();

        // Mesh-to-mesh solution transfer: carry the bunch field from the
        // old mesh onto the adapted one, then measure the interpolation
        // drift against the analytic density it represents.
        let transferred = transfer_linear(&old_mesh, &field, &adapted);
        let mut max_err = 0f64;
        for v in adapted.iter(Dim::Vertex) {
            let got = transferred.get_scalar(v).unwrap_or(0.0);
            let want = density(prev_center, adapted.coords(v));
            max_err = max_err.max((got - want).abs());
        }

        let (min_q, mean_q) = quality_stats(&adapted);
        let window: usize = adapted
            .elems()
            .filter(|&e| (adapted.centroid(e)[2] - center).abs() < 0.35)
            .count();
        let total = adapted.num_elems();
        println!(
            "step {step}: {total} tets ({} splits, {} collapses), {window} tets in the \
             window at z={center} ({:.0}% of the mesh in 17% of the volume), quality \
             min {min_q:.2} mean {mean_q:.2}, transfer max err {max_err:.2e}",
            rs.splits,
            cs.collapses,
            100.0 * window as f64 / total as f64,
        );

        // Advance the physics: the bunch is now at `center`.
        prev_center = center;
        field = Field::new("bunch", FieldShape::Linear, 1);
        field.set_from(&adapted, |p| vec![density(center, p)]);
        mesh = adapted;
    }
    println!("accelerator tracking complete: the refined window followed the bunch");
}
