//! Distributed finite-element assembly over a partitioned mesh — the §I
//! motivation for multi-criteria balance: "one step in a multi-physics
//! analysis may be using a cell centered FV method where work load balance
//! is based on the mesh regions only, while another step may be using second
//! order FE on the same mesh where vertex and edge balance is more important
//! to scaling".
//!
//! Assembles a lumped P1 mass "matrix" (diagonal) on a distributed vessel
//! mesh: each part integrates its own elements, shared vertex dofs are
//! accumulated across part boundaries, and the global mass must equal the
//! domain volume on every copy. Then reports how the per-part dof counts —
//! the quantity an FE solve scales with — differ from the element counts an
//! FV solve scales with.
//!
//! Run: `cargo run --release --example fe_assembly`

use pumi_adapt::measure;
use pumi_core::numbering::number_owned;
use pumi_core::overlap::{Overlap, Reduction};
use pumi_core::{distribute, PartMap};
use pumi_field::{dist_field, Field, FieldShape, FieldSync};
use pumi_geom::builders::VesselSpec;
use pumi_meshgen::vessel_tet;
use pumi_partition::partition_mesh;
use pumi_pcu::execute;
use pumi_util::stats::LoadStats;
use pumi_util::{Dim, MeshEnt};

fn main() {
    let spec = VesselSpec::aaa();
    let serial = vessel_tet(spec, 8, 24);
    let volume: f64 = serial.elems().map(|e| measure(&serial, e).abs()).sum();
    println!(
        "vessel mesh: {} tets, volume {:.4}",
        serial.num_elems(),
        volume
    );

    let nparts = 8;
    let labels = partition_mesh(&serial, nparts);
    let out = execute(4, |c| {
        let mut dm = distribute(c, PartMap::contiguous(nparts, 4), &serial, &labels);
        let ndof = number_owned(c, &mut dm, Dim::Vertex, "dof");

        // Element loop: lump each tet's volume onto its 4 vertices.
        let template = Field::new("mass", FieldShape::Linear, 1);
        let mut fields = dist_field(&dm, &template);
        for (slot, part) in dm.parts.iter().enumerate() {
            fields[slot].fill(&part.mesh, &[0.0]);
            for e in part.mesh.elems() {
                let w = measure(&part.mesh, e).abs() / 4.0;
                for &v in part.mesh.verts_of(e) {
                    let v = MeshEnt::vertex(v);
                    let m = fields[slot].get_scalar(v).unwrap_or(0.0);
                    fields[slot].set_scalar(v, m + w);
                }
            }
        }
        // Boundary assembly: sum the contributions of all copies.
        let ov = Overlap::from_dist(&dm);
        fields.sync(c, &dm, &ov, Reduction::Add);

        // Check conservation: summing owned dofs gives the domain volume.
        let mut local = 0.0;
        for (slot, part) in dm.parts.iter().enumerate() {
            for v in part.mesh.iter(Dim::Vertex) {
                if part.is_owned(v) {
                    local += fields[slot].get_scalar(v).unwrap_or(0.0);
                }
            }
        }
        let total = c.allreduce_sum_f64(local);

        // FV load (elements) vs FE load (vertex dofs) per part.
        let elems = dm.gather_loads(c, |p| p.mesh.num_elems() as f64);
        let dofs = dm.gather_loads(c, |p| p.mesh.count(Dim::Vertex) as f64);
        (c.rank() == 0).then_some((ndof, total, elems, dofs))
    });
    let (ndof, total, elems, dofs) = out.into_iter().flatten().next().unwrap();
    println!("assembled {ndof} vertex dofs; lumped mass total = {total:.4}");
    assert!(
        (total - volume).abs() < 1e-9 * volume.max(1.0),
        "mass not conserved: {total} vs {volume}"
    );
    let es = LoadStats::of(&elems);
    let ds = LoadStats::of(&dofs);
    println!(
        "FV load (elements/part): mean {:.0}, imbalance {:.1}%",
        es.mean,
        es.imbalance_pct()
    );
    println!(
        "FE load (vertices/part): mean {:.0}, imbalance {:.1}%",
        ds.mean,
        ds.imbalance_pct()
    );
    println!("same partition, different bottleneck — why ParMA balances multiple entity types");
}
