//! Quickstart: the PUMI workflow end to end on a small box mesh.
//!
//! Builds a tet mesh, partitions it to 4 parts on 2 simulated ranks,
//! inspects the partition model, migrates elements, adds a ghost layer, and
//! synchronizes a vertex field — the §II feature set in ~100 lines.
//!
//! Run: `cargo run --release --example quickstart`

use pumi_core::numbering::number_owned;
use pumi_core::overlap::{clear_overlap, grow_overlap, GhostOpts, Overlap, Reduction};
use pumi_core::verify::assert_dist_valid;
use pumi_core::{distribute, migrate, MigrationPlan, PartMap, PtnModel};
use pumi_field::{dist_field, Field, FieldShape, FieldSync};
use pumi_meshgen::tet_box;
use pumi_partition::partition_mesh;
use pumi_pcu::execute;
use pumi_util::{Dim, FxHashMap, PartId};

fn main() {
    // A serial mesh: 6*6*6*6 = 1296 tets of the unit box, fully classified
    // against the box geometric model.
    let serial = tet_box(6, 6, 6, 1.0, 1.0, 1.0);
    println!("serial mesh: {serial:?}");

    // Partition the element dual graph to 4 parts (the Zoltan-equivalent
    // baseline), then run 2 simulated MPI ranks with 2 parts each.
    let nparts = 4;
    let labels = partition_mesh(&serial, nparts);

    let reports = execute(2, |c| {
        let mut dm = distribute(c, PartMap::contiguous(nparts, 2), &serial, &labels);
        assert_dist_valid(c, &dm);

        // Inspect the partition model of the first local part (Fig 4).
        let part = &dm.parts[0];
        let pm = PtnModel::build(part);
        let neighbors = PtnModel::neighbors(part, Dim::Vertex);
        let mut lines = vec![format!(
            "part {}: {:?}, {} partition-model entities, neighbors {:?}",
            part.id,
            part.mesh,
            pm.ents.len(),
            neighbors
        )];

        // Migrate: part 0 hands 10 boundary elements to its first neighbor.
        let mut plans: FxHashMap<PartId, MigrationPlan> = FxHashMap::default();
        if part.id == 0 {
            if let Some(&to) = neighbors.first() {
                let mut plan = MigrationPlan::new();
                for (s, remotes) in part.shared_entities() {
                    if plan.len() >= 10 || s.dim() != Dim::Face {
                        continue;
                    }
                    if remotes.iter().any(|&(q, _)| q == to) {
                        for e in part.mesh.up_ents(s) {
                            plan.send(e, to);
                        }
                    }
                }
                plans.insert(0, plan);
            }
        }
        let stats = migrate(c, &mut dm, &plans);
        assert_dist_valid(c, &dm);
        lines.push(format!(
            "migrated {} elements ({} entity records)",
            stats.elements_moved, stats.entities_sent
        ));

        // One ghost layer bridged through vertices (read-only copies),
        // grown through the star-forest overlap.
        let ov = grow_overlap(c, &mut dm, GhostOpts::new().bridge(Dim::Vertex).layers(1));
        let ghosts = dm.global_sum(c, |p| p.num_ghosts() as u64);
        lines.push(format!(
            "grew a depth-{} overlap: {ghosts} ghost entity copies",
            ov.depth()
        ));
        clear_overlap(&mut dm);

        // Global vertex numbering + an assembled vertex field.
        let nvtx = number_owned(c, &mut dm, Dim::Vertex, "gvn");
        let template = Field::new("mass", FieldShape::Linear, 1);
        let mut fields = dist_field(&dm, &template);
        for (slot, part) in dm.parts.iter().enumerate() {
            for v in part.mesh.iter(Dim::Vertex) {
                // Each part contributes 1 per local copy; the Add-sync
                // sums contributions across part boundaries.
                fields[slot].set_scalar(v, 1.0);
            }
        }
        let ov = Overlap::from_dist(&dm);
        fields.sync(c, &dm, &ov, Reduction::Add);
        lines.push(format!("numbered {nvtx} global vertices"));
        (c.rank() == 0).then_some(lines)
    });

    for line in reports.into_iter().flatten().flatten() {
        println!("{line}");
    }
    println!("quickstart complete");
}
